"""Common shapes for real-trace ingestion.

Every parser (:mod:`repro.perfio.parsers`) lowers its input format to a
stream of :class:`CounterSample`s — one raw counter reading with whatever
enabled/running bookkeeping the format carries — and accounts everything it
could *not* lower in an :class:`IngestStats`.  The skip-and-account
contract mirrors the tracefile reader's malformed-record hardening: a
parser never raises on damaged input; it counts the damage and moves on,
and the fleet surfaces the counts through the same
:class:`~repro.fleet.events.MalformedRecordSkipped` accounting as replay
hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["CounterSample", "IngestStats", "PERF_FORMATS"]

#: The ingestion formats the parsers understand ("auto" sniffs among them).
PERF_FORMATS = ("stat-csv", "script", "jsonl")


@dataclass
class CounterSample:
    """One raw counter reading, as parsed from a perf capture.

    ``value`` is ``None`` for readings perf reported as ``<not counted>`` /
    ``<not supported>`` — the event existed in the interval but produced no
    count (it was scheduled off every counter), which is exactly the
    sub-sampling the correction is built to see.  ``enabled`` and
    ``running`` carry the kernel's time-enabled / time-running bookkeeping
    in nanoseconds when the format provides both; ``running_pct`` is perf
    stat's pre-computed percentage column.  The multiplexing fraction for a
    reading is :meth:`fraction`.
    """

    timestamp: float
    event: str
    value: Optional[float]
    enabled: float = 0.0
    running: float = 0.0
    running_pct: Optional[float] = None
    cpu: Optional[int] = None
    lineno: int = 0

    def fraction(self) -> Optional[float]:
        """The fraction of the interval the event was actually counting.

        ``None`` means the format carried no multiplexing bookkeeping for
        this reading (e.g. a ``perf script`` sample line) — the lowering
        then treats the reading as fully counted.
        """
        if self.running_pct is not None:
            return max(0.0, min(1.0, self.running_pct / 100.0))
        if self.enabled > 0.0:
            return max(0.0, min(1.0, self.running / self.enabled))
        return None


@dataclass
class IngestStats:
    """Skip-and-account bookkeeping for one ingested capture.

    ``skipped_lines`` counts malformed input (truncated, interleaved,
    locale-mangled — anything the parser could not lower); ``unknown_events``
    counts readings dropped by the schema mapper's ``on_unknown="skip"``
    policy, per raw event name.  Both feed the same accounting surface as
    the tracefile reader: the host channel announces their sum in one
    :class:`~repro.fleet.events.MalformedRecordSkipped` event at stream
    open.
    """

    path: str = ""
    format: str = ""
    total_lines: int = 0
    comment_lines: int = 0
    parsed_samples: int = 0
    skipped_lines: int = 0
    not_counted: int = 0
    #: Raw event name -> readings dropped under ``on_unknown="skip"``.
    unknown_events: Dict[str, int] = field(default_factory=dict)
    empty_ticks: int = 0
    n_ticks: int = 0
    torn_tail: bool = False

    @property
    def unknown_total(self) -> int:
        """Total readings dropped because their event name did not map."""
        return sum(self.unknown_events.values())

    @property
    def accounted_skips(self) -> int:
        """Everything skipped-and-accounted: malformed plus unknown-event."""
        return self.skipped_lines + self.unknown_total

    def note_unknown(self, raw_event: str) -> None:
        self.unknown_events[raw_event] = self.unknown_events.get(raw_event, 0) + 1

    def summary(self) -> Dict[str, object]:
        """JSON-shaped digest (the CLI preview and tests read this)."""
        return {
            "path": self.path,
            "format": self.format,
            "total_lines": self.total_lines,
            "parsed_samples": self.parsed_samples,
            "skipped_lines": self.skipped_lines,
            "unknown_events": dict(self.unknown_events),
            "not_counted": self.not_counted,
            "empty_ticks": self.empty_ticks,
            "n_ticks": self.n_ticks,
            "torn_tail": self.torn_tail,
        }
