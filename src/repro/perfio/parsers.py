"""Parsers for the supported perf capture formats.

Each parser is a generator over input lines yielding
:class:`~repro.perfio.model.CounterSample`s and accounting everything else
in the shared :class:`~repro.perfio.model.IngestStats` — the
skip-and-account contract: malformed lines (truncated mid-write,
interleaved stdout, locale-mangled numbers) are counted, never raised on.

Supported formats:

``stat-csv``
    ``perf stat -I <ms> -x, -e <events> -o out.csv`` interval output —
    one CSV row per (interval, event):
    ``ts,value,unit,event,run_ns,pct_running[,metric,metric_unit]``.
    ``<not counted>`` / ``<not supported>`` values and the
    percentage-of-time-running column (perf's ``(scaled from X%)``
    bookkeeping) are preserved for the multiplexing-fraction lowering.

``script``
    ``perf script`` sample lines:
    ``comm pid [cpu] time: period event: ip symbol (dso)``.
    Each line is one PMI sample of ``period`` counts.

``jsonl``
    Generic JSON-lines counter dumps (one object per reading), with
    tolerant key aliases: ``ts``/``time``/``timestamp``, ``event``/``name``,
    ``value``/``count``, ``enabled``/``time_enabled``,
    ``running``/``time_running``, ``cpu``.
"""

from __future__ import annotations

import json
import re
from typing import Iterable, Iterator, Optional

from repro.perfio.model import PERF_FORMATS, CounterSample, IngestStats

__all__ = ["detect_format", "iter_jsonl", "iter_script", "iter_stat_csv", "parser_for"]

#: Values perf prints when an event produced no count in an interval.
_NOT_COUNTED = ("<not counted>", "<not supported>")

#: ``perf script`` sample line.  comm may contain spaces ("migration/0"
#: does not, but "Web Content" does) so it matches non-greedily; the cpu
#: bracket and the period column are both optional in real output.
_SCRIPT_RE = re.compile(
    r"^\s*(?P<comm>.*?)\s+(?P<pid>\d+(?:/\d+)?)\s+"
    r"(?:\[(?P<cpu>\d+)\]\s+)?"
    r"(?P<time>\d+\.\d+):\s+"
    r"(?:(?P<period>\d+)\s+)?"
    r"(?P<event>[^\s:]+(?::[a-zA-Z]+)?):"
)


def _to_float(text: str) -> Optional[float]:
    """Tolerant numeric parse: thousands separators and decimal commas.

    Returns ``None`` when the text is not a number — the caller decides
    whether that makes the whole line malformed.
    """
    cleaned = text.strip().replace("_", "").replace(" ", "")
    # Locale thousands groupings also arrive as (narrow) no-break spaces.
    cleaned = cleaned.replace("\u00a0", "").replace("\u202f", "")
    if not cleaned:
        return None
    if "," in cleaned:
        # Locale-mangled: "1.234.567,89" or "1234,56".  A comma followed by
        # exactly three digits per group is a thousands separator; otherwise
        # it is a decimal comma.
        if re.fullmatch(r"\d{1,3}(?:,\d{3})+(?:\.\d+)?", cleaned):
            cleaned = cleaned.replace(",", "")
        elif re.fullmatch(r"\d{1,3}(?:\.\d{3})+(?:,\d+)?", cleaned):
            cleaned = cleaned.replace(".", "").replace(",", ".")
        elif re.fullmatch(r"\d+,\d+", cleaned):
            cleaned = cleaned.replace(",", ".")
        else:
            return None
    try:
        return float(cleaned)
    except ValueError:
        return None


def iter_stat_csv(lines: Iterable[str], stats: IngestStats) -> Iterator[CounterSample]:
    """Parse ``perf stat -I ... -x,`` interval CSV output."""
    for lineno, raw in enumerate(lines, start=1):
        stats.total_lines += 1
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            # perf stat -o prefixes the file with "# started on <date>".
            stats.comment_lines += 1
            continue
        fields = line.split(",")
        if len(fields) < 6:
            stats.skipped_lines += 1
            continue
        timestamp = _to_float(fields[0])
        event = fields[3].strip()
        if timestamp is None or not event:
            stats.skipped_lines += 1
            continue
        value_text = fields[1].strip()
        if value_text in _NOT_COUNTED:
            value: Optional[float] = None
            stats.not_counted += 1
        else:
            value = _to_float(value_text)
            if value is None:
                stats.skipped_lines += 1
                continue
        enabled = _to_float(fields[4])
        pct = _to_float(fields[5].rstrip("%"))
        stats.parsed_samples += 1
        yield CounterSample(
            timestamp=timestamp,
            event=event,
            value=value,
            enabled=enabled if enabled is not None else 0.0,
            running_pct=pct,
            lineno=lineno,
        )


def iter_script(lines: Iterable[str], stats: IngestStats) -> Iterator[CounterSample]:
    """Parse ``perf script`` event sample lines."""
    for lineno, raw in enumerate(lines, start=1):
        stats.total_lines += 1
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.lstrip().startswith("#"):
            stats.comment_lines += 1
            continue
        match = _SCRIPT_RE.match(line)
        if match is None:
            stats.skipped_lines += 1
            continue
        timestamp = _to_float(match.group("time"))
        if timestamp is None:
            stats.skipped_lines += 1
            continue
        period = match.group("period")
        cpu = match.group("cpu")
        stats.parsed_samples += 1
        yield CounterSample(
            timestamp=timestamp,
            event=match.group("event"),
            value=float(period) if period is not None else 1.0,
            cpu=int(cpu) if cpu is not None else None,
            lineno=lineno,
        )


def iter_jsonl(lines: Iterable[str], stats: IngestStats) -> Iterator[CounterSample]:
    """Parse generic JSON-lines counter dumps."""
    for lineno, raw in enumerate(lines, start=1):
        stats.total_lines += 1
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#") or line.startswith("//"):
            stats.comment_lines += 1
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            stats.skipped_lines += 1
            continue
        if not isinstance(payload, dict):
            stats.skipped_lines += 1
            continue
        timestamp = _first_number(payload, "ts", "time", "timestamp")
        event = payload.get("event", payload.get("name"))
        if timestamp is None or not isinstance(event, str) or not event:
            stats.skipped_lines += 1
            continue
        raw_value = _first_field(payload, "value", "count")
        if isinstance(raw_value, str) and raw_value in _NOT_COUNTED:
            value: Optional[float] = None
            stats.not_counted += 1
        elif raw_value is None and _has_field(payload, "value", "count"):
            value = None
            stats.not_counted += 1
        else:
            value = _coerce_number(raw_value)
            if value is None:
                stats.skipped_lines += 1
                continue
        enabled = _first_number(payload, "enabled", "time_enabled") or 0.0
        running = _first_number(payload, "running", "time_running") or 0.0
        cpu = _first_number(payload, "cpu")
        stats.parsed_samples += 1
        yield CounterSample(
            timestamp=timestamp,
            event=event,
            value=value,
            enabled=enabled,
            running=running,
            cpu=int(cpu) if cpu is not None else None,
            lineno=lineno,
        )


def _has_field(payload: dict, *keys: str) -> bool:
    return any(key in payload for key in keys)


def _first_field(payload: dict, *keys: str):
    for key in keys:
        if key in payload:
            return payload[key]
    return None


def _coerce_number(value) -> Optional[float]:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return _to_float(value)
    return None


def _first_number(payload: dict, *keys: str) -> Optional[float]:
    return _coerce_number(_first_field(payload, *keys))


def detect_format(lines: Iterable[str]) -> str:
    """Sniff which capture format *lines* hold.

    The first parseable line decides: a JSON object means ``jsonl``, a
    comma-separated row whose first field is a timestamp means
    ``stat-csv``, anything else falls back to ``script``.  An empty input
    defaults to ``stat-csv`` (the most common capture).
    """
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("{"):
            return "jsonl"
        fields = line.split(",")
        if len(fields) >= 6 and _to_float(fields[0]) is not None:
            return "stat-csv"
        return "script"
    return "stat-csv"


def parser_for(fmt: str):
    """The parser generator for *fmt* (raises on unknown names)."""
    parsers = {
        "stat-csv": iter_stat_csv,
        "script": iter_script,
        "jsonl": iter_jsonl,
    }
    if fmt not in parsers:
        raise ValueError(
            f"unknown perf capture format {fmt!r}; expected one of "
            f"{PERF_FORMATS} (or 'auto' to sniff)"
        )
    return parsers[fmt]
