"""Real-trace ingestion: replay a machine's PMU samples through the pipeline.

``repro.perfio`` turns real perf captures — ``perf stat -I ... -x,``
interval CSV, ``perf script`` sample lines, or generic JSONL counter
dumps — into the same deterministic record streams the synthetic fleet
produces, so a real machine's multiplexed counters flow through the
corrected-estimate pipeline (engine, worker pool, WAL crash-resume,
baselines, chain capture) unchanged.

The layers, bottom to top:

* :mod:`~repro.perfio.parsers` — format parsers lowering raw lines to a
  common :class:`~repro.perfio.model.CounterSample` stream
  (skip-and-account on malformed input, never raise);
* :mod:`~repro.perfio.mapping` — the schema mapper resolving raw perf
  event names onto the event catalog (alias canonicalisation via
  semantics, unknown-event policy);
* :mod:`~repro.perfio.lower` — grouping samples into per-quantum
  :class:`~repro.pmu.sampling.SamplingRecord`s, carrying perf's
  enabled-vs-running bookkeeping as per-event multiplexing fractions;
* :mod:`~repro.perfio.source` — :class:`PerfTraceSource`, the fleet host
  source (``HostSpec(perf="capture.csv", format="stat-csv")`` registers
  one next to synthetic/replay hosts).

See ``docs/real-traces.md`` for the capture recipe and schema-mapping
table.
"""

from repro.perfio.lower import LoweredCapture, lower_capture
from repro.perfio.mapping import (
    ALIAS_SEMANTICS,
    SchemaMapper,
    UnknownEventError,
    UNKNOWN_POLICIES,
)
from repro.perfio.model import PERF_FORMATS, CounterSample, IngestStats
from repro.perfio.parsers import (
    detect_format,
    iter_jsonl,
    iter_script,
    iter_stat_csv,
    parser_for,
)
from repro.perfio.source import PerfTraceSource

__all__ = [
    "ALIAS_SEMANTICS",
    "CounterSample",
    "IngestStats",
    "LoweredCapture",
    "PERF_FORMATS",
    "PerfTraceSource",
    "SchemaMapper",
    "UNKNOWN_POLICIES",
    "UnknownEventError",
    "detect_format",
    "iter_jsonl",
    "iter_script",
    "iter_stat_csv",
    "lower_capture",
    "parser_for",
]
