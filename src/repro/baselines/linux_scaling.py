"""Linux's built-in multiplexing correction.

The kernel scales each multiplexed count by ``time_total / time_enabled``
(§2 and §4 "Formalism").  A monitoring tool reads the scaled value
periodically (once per *read interval*, which spans several multiplexing
quanta) and differences consecutive reads, so the count attributed to a read
interval is the count observed while the event was scheduled, extrapolated
over the whole interval.  When the event was not scheduled at all during the
interval the previous rate is carried forward.  That extrapolation is the
dominant error source when the workload has phases or bursts, and it gets
worse as more events share the counters (fewer enabled quanta per interval).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.fg.registry import register_estimator
from repro.pmu.sampling import SampledTrace
from repro.pmu.traces import EstimateTrace

#: Supported emulation modes.
MODES = ("scaling", "hold", "cumulative")


@register_estimator(
    "linux",
    compiled_path=False,
    baseline=True,
    description="Linux t_enabled/t_running scaling (baseline correction)",
)
class LinuxScaling:
    """Per-tick estimates using the kernel's time-based scaling.

    Parameters
    ----------
    mode:
        ``"scaling"`` (default) models a reader that polls the scaled counter
        once per ``read_interval_ticks`` quanta: within an interval the
        estimate is the average rate observed over the quanta in which the
        event was scheduled, and intervals with no enabled quanta carry the
        previous interval's rate forward.
        ``"hold"`` holds the most recently measured quantum total.
        ``"cumulative"`` differences the scaled cumulative count from the
        start of the run (attributing the historical average rate to
        unmeasured quanta).
    read_interval_ticks:
        Number of multiplexing quanta between two userspace reads of the
        scaled counter (only used by ``"scaling"``).
    """

    def __init__(self, mode: str = "scaling", *, read_interval_ticks: int = 8) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
        if read_interval_ticks <= 0:
            raise ValueError("read_interval_ticks must be positive")
        self.mode = mode
        self.read_interval_ticks = read_interval_ticks
        self.name = "linux"

    # -- mode implementations ---------------------------------------------------

    def _correct_scaling(self, sampled: SampledTrace) -> EstimateTrace:
        events = sampled.events
        estimates = EstimateTrace(method=self.name)
        interval_observed: Dict[str, float] = {event: 0.0 for event in events}
        interval_enabled: Dict[str, int] = {event: 0 for event in events}
        carried_rate: Dict[str, float] = {event: 0.0 for event in events}

        for tick_index, record in enumerate(sampled.records):
            if tick_index % self.read_interval_ticks == 0 and tick_index > 0:
                # A userspace read happened: fold the interval into the carried
                # rate and start a new interval.
                for event in events:
                    if interval_enabled[event] > 0:
                        carried_rate[event] = interval_observed[event] / interval_enabled[event]
                    interval_observed[event] = 0.0
                    interval_enabled[event] = 0

            tick_estimates: Dict[str, float] = {}
            for event in events:
                if event in record.samples:
                    interval_observed[event] += record.total(event)
                    interval_enabled[event] += 1
                if interval_enabled[event] > 0:
                    # Scaling: observed count extrapolated over the interval,
                    # expressed as a per-quantum rate.
                    tick_estimates[event] = interval_observed[event] / interval_enabled[event]
                else:
                    tick_estimates[event] = carried_rate[event]
            estimates.append(tick_estimates)
        return estimates

    def _correct_hold(self, sampled: SampledTrace) -> EstimateTrace:
        events = sampled.events
        estimates = EstimateTrace(method=self.name)
        last_measured: Dict[str, float] = {event: 0.0 for event in events}
        for record in sampled.records:
            tick_estimates: Dict[str, float] = {}
            for event in events:
                if event in record.samples:
                    last_measured[event] = record.total(event)
                tick_estimates[event] = last_measured[event]
            estimates.append(tick_estimates)
        return estimates

    def _correct_cumulative(self, sampled: SampledTrace) -> EstimateTrace:
        events = sampled.events
        estimates = EstimateTrace(method=self.name)
        cumulative: Dict[str, float] = {event: 0.0 for event in events}
        enabled: Dict[str, int] = {event: 0 for event in events}
        previous_scaled: Dict[str, float] = {event: 0.0 for event in events}
        for tick_index, record in enumerate(sampled.records):
            elapsed = tick_index + 1
            tick_estimates: Dict[str, float] = {}
            for event in events:
                if event in record.samples:
                    cumulative[event] += record.total(event)
                    enabled[event] += 1
                scaled = cumulative[event] * elapsed / enabled[event] if enabled[event] else 0.0
                tick_estimates[event] = max(scaled - previous_scaled[event], 0.0)
                previous_scaled[event] = scaled
            estimates.append(tick_estimates)
        return estimates

    # -- public API ----------------------------------------------------------------

    def correct(self, sampled: SampledTrace) -> EstimateTrace:
        """Apply the configured scaling correction over a sampled trace."""
        if self.mode == "scaling":
            return self._correct_scaling(sampled)
        if self.mode == "hold":
            return self._correct_hold(sampled)
        return self._correct_cumulative(sampled)
