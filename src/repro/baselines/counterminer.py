"""CounterMiner-style outlier dropping (Lv et al., MICRO 2018).

CounterMiner improves multiplexed measurements by discarding outlier samples
(using an extreme-value test) and re-aggregating the remainder.  It was
designed for offline trace cleaning; the paper uses it online as its
strongest baseline, which is reproduced here with a sliding window of recent
quantum totals per event.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

import numpy as np

from repro.fg.registry import register_estimator
from repro.pmu.sampling import SampledTrace
from repro.pmu.traces import EstimateTrace


@register_estimator(
    "counterminer",
    compiled_path=False,
    baseline=True,
    description="CounterMiner MAD outlier dropping (baseline correction)",
)
class CounterMiner:
    """Sliding-window outlier rejection over multiplexed samples.

    Parameters
    ----------
    window:
        Number of recent measured quanta retained per event.
    significance:
        Outlier rejection strength: samples further than ``significance``
        median-absolute-deviations from the window median are dropped (the
        role the Gumbel max-test plays in the original system).
    """

    def __init__(self, window: int = 4, significance: float = 2.5, recency: float = 2.0) -> None:
        if window < 2:
            raise ValueError("window must be at least 2")
        if significance <= 0:
            raise ValueError("significance must be positive")
        if recency < 1.0:
            raise ValueError("recency must be at least 1")
        self.window = window
        self.significance = significance
        self.recency = recency
        self.name = "counterminer"

    def _robust_estimate(self, history: Deque[float]) -> float:
        values = np.array(history, dtype=float)
        if values.size == 1:
            return float(values[0])
        median = float(np.median(values))
        mad = float(np.median(np.abs(values - median)))
        if mad > 0:
            keep = np.abs(values - median) <= self.significance * 1.4826 * mad
        else:
            keep = np.ones(values.size, dtype=bool)
        if not keep.any():
            return median
        # Recency weighting: newer retained samples dominate so that the
        # estimate tracks phase changes instead of lagging a full window.
        weights = self.recency ** np.arange(values.size, dtype=float)
        weights = weights * keep
        return float(np.sum(values * weights) / np.sum(weights))

    def correct(self, sampled: SampledTrace) -> EstimateTrace:
        """Apply sliding-window outlier rejection over a sampled trace."""
        events = sampled.events
        estimates = EstimateTrace(method=self.name)
        history: Dict[str, Deque[float]] = {event: deque(maxlen=self.window) for event in events}

        for record in sampled.records:
            tick_estimates: Dict[str, float] = {}
            for event in events:
                if event in record.samples:
                    history[event].append(record.total(event))
                if history[event]:
                    tick_estimates[event] = self._robust_estimate(history[event])
                else:
                    tick_estimates[event] = 0.0
            estimates.append(tick_estimates)
        return estimates
