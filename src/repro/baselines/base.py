"""Common interface for correction methods."""

from __future__ import annotations

from typing import Protocol

from repro.pmu.sampling import SampledTrace
from repro.pmu.traces import EstimateTrace


class CorrectionMethod(Protocol):
    """Anything that turns a multiplexed sample trace into per-tick estimates."""

    #: Human-readable method name used in reports.
    name: str

    def correct(self, sampled: SampledTrace) -> EstimateTrace:
        """Produce per-tick estimates for every monitored event."""
        ...
