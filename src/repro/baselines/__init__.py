"""Baseline correction methods the paper compares against (§6.2).

* :class:`LinuxScaling` — the kernel's built-in ``t_enabled/t_running``
  extrapolation of multiplexed counts.
* :class:`CounterMiner` — outlier dropping over recent samples (Lv et al.,
  MICRO'18), an offline variance-reduction technique used online here exactly
  as the paper does.
* :class:`WeaverPin` — the Weaver & McKee instruction-count correction
  ("WM+Pin"), which fixes instruction counts through binary instrumentation
  but leaves every other event uncorrected and perturbs the application.
"""

from repro.baselines.base import CorrectionMethod
from repro.baselines.linux_scaling import LinuxScaling
from repro.baselines.counterminer import CounterMiner
from repro.baselines.weaver import WeaverPin

__all__ = ["CorrectionMethod", "LinuxScaling", "CounterMiner", "WeaverPin"]
