"""Baseline correction methods the paper compares against (§6.2).

* :class:`LinuxScaling` — the kernel's built-in ``t_enabled/t_running``
  extrapolation of multiplexed counts.
* :class:`CounterMiner` — outlier dropping over recent samples (Lv et al.,
  MICRO'18), an offline variance-reduction technique used online here exactly
  as the paper does.
* :class:`WeaverPin` — the Weaver & McKee instruction-count correction
  ("WM+Pin"), which fixes instruction counts through binary instrumentation
  but leaves every other event uncorrected and perturbs the application.

Each class self-registers into :mod:`repro.fg.registry` with
``baseline=True`` (names ``"linux"``, ``"counterminer"``, ``"wm+pin"``), so
importing this package is what makes the names available to
``RunSpec.baselines`` and the scenario-grid comparison
(:mod:`repro.api.comparison`).  Baselines share the registry with the
engine's moment estimators but not the role: the spec layer and the engine
both reject a baseline name where a moment estimator is expected.
"""

from repro.baselines.base import CorrectionMethod
from repro.baselines.linux_scaling import LinuxScaling
from repro.baselines.counterminer import CounterMiner
from repro.baselines.weaver import WeaverPin

__all__ = ["CorrectionMethod", "LinuxScaling", "CounterMiner", "WeaverPin"]
