"""Weaver & McKee instruction-count correction with Pin ("WM+Pin").

The technique intercepts every dynamic instruction with Pin to obtain exact
instruction counts and uses them to correct core metrics such as IPC.  Two
consequences are modelled, both discussed in §6.2 of the paper:

* only instruction-count events are corrected — every other event keeps the
  plain Linux-scaled estimate; and
* the instrumentation itself perturbs the application (up to ~198x slowdown
  in the paper's benchmarks), which shows up as extra noise on the
  non-instruction events.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.events import semantics as sem
from repro.events.catalog import EventCatalog
from repro.baselines.linux_scaling import LinuxScaling
from repro.fg.registry import register_estimator
from repro.pmu.sampling import SampledTrace
from repro.pmu.traces import EstimateTrace


@register_estimator(
    "wm+pin",
    compiled_path=False,
    baseline=True,
    description="Weaver&McKee+Pin instruction-count correction (baseline)",
)
class WeaverPin:
    """Instruction-count-only correction with instrumentation perturbation.

    Parameters
    ----------
    catalog:
        Event catalog, used to find which events measure instruction counts.
    instrumentation_noise:
        Log-normal sigma of the perturbation Pin's instrumentation adds to
        non-instruction events.
    slowdown:
        Modelled application slowdown factor caused by instruction
        interception (the paper reports up to 198.2x); reported as metadata
        by the latency experiment.
    seed:
        Seed of the perturbation noise.
    """

    def __init__(
        self,
        catalog: EventCatalog,
        *,
        instrumentation_noise: float = 0.08,
        slowdown: float = 198.2,
        seed: int = 0,
    ) -> None:
        if instrumentation_noise < 0:
            raise ValueError("instrumentation_noise must be non-negative")
        if slowdown < 1:
            raise ValueError("slowdown must be at least 1x")
        self.catalog = catalog
        self.instrumentation_noise = instrumentation_noise
        self.slowdown = slowdown
        self.name = "wm+pin"
        self._rng = np.random.default_rng(seed)
        self._linux = LinuxScaling()

    def _instruction_events(self, events) -> set:
        names = set()
        for event in events:
            try:
                spec = self.catalog.get(event)
            except KeyError:
                continue
            if spec.semantic == sem.INSTRUCTIONS:
                names.add(event)
        return names

    def correct(self, sampled: SampledTrace, *, true_instruction_series=None) -> EstimateTrace:
        """Correct instruction counts; other events keep perturbed Linux estimates.

        Parameters
        ----------
        sampled:
            The multiplexed sample trace.
        true_instruction_series:
            Optional exact per-tick instruction counts (what Pin's
            interception provides).  When omitted, the best available
            measured totals are used instead.
        """
        linux_estimates = self._linux.correct(sampled)
        instruction_events = self._instruction_events(sampled.events)
        estimates = EstimateTrace(method=self.name)

        for tick, tick_values in enumerate(linux_estimates.estimates):
            corrected: Dict[str, float] = {}
            for event, value in tick_values.items():
                if event in instruction_events:
                    if true_instruction_series is not None:
                        corrected[event] = float(true_instruction_series[tick])
                    else:
                        record = sampled.record(tick)
                        corrected[event] = (
                            record.total(event) if event in record.samples else value
                        )
                else:
                    perturbation = (
                        float(np.exp(self._rng.normal(0.0, self.instrumentation_noise)))
                        if self.instrumentation_noise > 0
                        else 1.0
                    )
                    corrected[event] = value * perturbation
            estimates.append(corrected)
        return estimates
