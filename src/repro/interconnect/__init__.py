"""PCIe interconnect model for the §6.3 case study.

Models the dual-socket topology of Fig. 9 (CPUs, PCIe switches, GPUs, NICs
and the BayesPerf FPGA), routes transfers through it, and computes achieved
bandwidth under link contention — the resource-sharing effect the ML-based
IO scheduler of the case study is trying to avoid.

The scenario grid prices its contention axis here:
``ContentionSpec(background=n)`` on a :class:`repro.api.RunSpec` has
:func:`repro.workloads.contention_slowdown` route a probe transfer against
``n`` background DMA streams through :class:`ContentionModel` on the
case-study topology, and the resulting slowdown throttles every synthetic
workload in the run.
"""

from repro.interconnect.topology import PCIeDevice, PCIeLink, PCIeTopology, build_case_study_topology
from repro.interconnect.transfer import ContentionModel, Transfer, TransferResult

__all__ = [
    "PCIeDevice",
    "PCIeLink",
    "PCIeTopology",
    "build_case_study_topology",
    "ContentionModel",
    "Transfer",
    "TransferResult",
]
