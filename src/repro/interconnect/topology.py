"""PCIe tree topology.

The case-study system (Fig. 9) has two CPU sockets, each with two PCIe
switches; GPUs and NICs hang off the switches, and the BayesPerf FPGA and the
training GPU sit on the first socket.  The topology is a graph whose edges
carry link bandwidths; routing walks up to the lowest common ancestor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx


@dataclass(frozen=True)
class PCIeDevice:
    """One endpoint or switch in the PCIe fabric."""

    name: str
    kind: str  # "cpu", "switch", "gpu", "nic", "fpga", "memory"
    numa_node: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("device name must be non-empty")
        if self.kind not in ("cpu", "switch", "gpu", "nic", "fpga", "memory"):
            raise ValueError(f"unknown device kind {self.kind!r}")


@dataclass(frozen=True)
class PCIeLink:
    """A bidirectional link with a peak bandwidth in GB/s."""

    first: str
    second: str
    bandwidth_gbps: float
    base_latency_us: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.base_latency_us < 0:
            raise ValueError("latency must be non-negative")


class PCIeTopology:
    """A PCIe fabric: devices, links and shortest-path routing."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._devices: Dict[str, PCIeDevice] = {}

    def add_device(self, device: PCIeDevice) -> None:
        if device.name in self._devices:
            raise ValueError(f"duplicate device {device.name!r}")
        self._devices[device.name] = device
        self._graph.add_node(device.name)

    def add_link(self, link: PCIeLink) -> None:
        for endpoint in (link.first, link.second):
            if endpoint not in self._devices:
                raise KeyError(f"unknown device {endpoint!r}")
        self._graph.add_edge(link.first, link.second, link=link)

    def device(self, name: str) -> PCIeDevice:
        try:
            return self._devices[name]
        except KeyError:
            raise KeyError(f"unknown device {name!r}") from None

    def devices(self, kind: Optional[str] = None) -> Tuple[PCIeDevice, ...]:
        if kind is None:
            return tuple(self._devices.values())
        return tuple(d for d in self._devices.values() if d.kind == kind)

    def route(self, source: str, destination: str) -> Tuple[PCIeLink, ...]:
        """Links traversed by a transfer from *source* to *destination*."""
        path = nx.shortest_path(self._graph, source, destination)
        links: List[PCIeLink] = []
        for first, second in zip(path, path[1:]):
            links.append(self._graph.edges[first, second]["link"])
        return tuple(links)

    def shared_links(self, route_a: Sequence[PCIeLink], route_b: Sequence[PCIeLink]) -> Tuple[PCIeLink, ...]:
        """Links appearing in both routes (the contention points)."""
        def key(link: PCIeLink) -> Tuple[str, str]:
            return tuple(sorted((link.first, link.second)))

        keys_b = {key(link) for link in route_b}
        return tuple(link for link in route_a if key(link) in keys_b)

    def path_latency_us(self, source: str, destination: str) -> float:
        """Sum of base latencies along the route."""
        return sum(link.base_latency_us for link in self.route(source, destination))


def build_case_study_topology() -> PCIeTopology:
    """The dual-socket topology of Fig. 9.

    Socket 0 hosts the training GPU and NIC0 behind one switch and the
    BayesPerf FPGA behind the other; socket 1 hosts four worker GPUs and NIC1
    behind two switches.  The inter-socket link models the UPI/X-Bus
    connection.  NIC0 shares its switch uplink with the training GPU and NIC1
    shares its switch uplink with two worker GPUs, so either NIC can be the
    contended one depending on what the accelerators are doing.
    """
    topo = PCIeTopology()
    devices = [
        PCIeDevice("cpu0", "cpu", numa_node=0),
        PCIeDevice("cpu1", "cpu", numa_node=1),
        PCIeDevice("mem0", "memory", numa_node=0),
        PCIeDevice("mem1", "memory", numa_node=1),
        PCIeDevice("switch0a", "switch", numa_node=0),
        PCIeDevice("switch0b", "switch", numa_node=0),
        PCIeDevice("switch1a", "switch", numa_node=1),
        PCIeDevice("switch1b", "switch", numa_node=1),
        PCIeDevice("train_gpu", "gpu", numa_node=0),
        PCIeDevice("fpga", "fpga", numa_node=0),
        PCIeDevice("nic0", "nic", numa_node=0),
        PCIeDevice("gpu0", "gpu", numa_node=1),
        PCIeDevice("gpu1", "gpu", numa_node=1),
        PCIeDevice("gpu2", "gpu", numa_node=1),
        PCIeDevice("gpu3", "gpu", numa_node=1),
        PCIeDevice("nic1", "nic", numa_node=1),
    ]
    for device in devices:
        topo.add_device(device)

    links = [
        PCIeLink("cpu0", "mem0", 64.0, 0.2),
        PCIeLink("cpu1", "mem1", 64.0, 0.2),
        PCIeLink("cpu0", "cpu1", 32.0, 0.8),
        PCIeLink("cpu0", "switch0a", 15.75, 0.8),
        PCIeLink("cpu0", "switch0b", 15.75, 0.8),
        PCIeLink("cpu1", "switch1a", 15.75, 0.8),
        PCIeLink("cpu1", "switch1b", 15.75, 0.8),
        PCIeLink("switch0a", "train_gpu", 15.75, 0.5),
        PCIeLink("switch0b", "fpga", 15.75, 0.5),
        PCIeLink("switch0a", "nic0", 12.5, 0.5),
        PCIeLink("switch1a", "gpu0", 15.75, 0.5),
        PCIeLink("switch1a", "gpu1", 15.75, 0.5),
        PCIeLink("switch1b", "gpu2", 15.75, 0.5),
        PCIeLink("switch1b", "gpu3", 15.75, 0.5),
        PCIeLink("switch1b", "nic1", 12.5, 0.5),
    ]
    for link in links:
        topo.add_link(link)
    return topo
