"""Transfer simulation with link contention.

Concurrent transfers that share PCIe links split the link bandwidth; the
model computes a max-min fair allocation over the shared links and derives
per-transfer completion times and achieved bandwidths.  This reproduces the
"isolated" vs "contention" bandwidth curves of Fig. 9 and provides the reward
signal for the ML-based IO schedulers of §6.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.interconnect.topology import PCIeLink, PCIeTopology


@dataclass(frozen=True)
class Transfer:
    """One DMA/RDMA transfer across the fabric."""

    name: str
    source: str
    destination: str
    size_bytes: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("transfer name must be non-empty")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")


@dataclass
class TransferResult:
    """Outcome of simulating one transfer."""

    transfer: Transfer
    bandwidth_gbps: float
    latency_us: float

    @property
    def completion_us(self) -> float:
        """Latency plus serialisation time at the achieved bandwidth."""
        return self.latency_us + self.transfer.size_bytes / (self.bandwidth_gbps * 1e3)

    @property
    def achieved_gbps(self) -> float:
        """End-to-end achieved bandwidth including latency overhead."""
        return self.transfer.size_bytes / (self.completion_us * 1e3)


class ContentionModel:
    """Max-min fair bandwidth sharing over a PCIe topology."""

    def __init__(self, topology: PCIeTopology) -> None:
        self.topology = topology

    @staticmethod
    def _link_key(link: PCIeLink) -> Tuple[str, str]:
        return tuple(sorted((link.first, link.second)))

    def allocate(self, transfers: Sequence[Transfer]) -> Dict[str, TransferResult]:
        """Max-min fair allocation of link bandwidth among concurrent transfers."""
        if not transfers:
            return {}
        routes = {t.name: self.topology.route(t.source, t.destination) for t in transfers}
        remaining = {self._link_key(link): link.bandwidth_gbps for t in transfers for link in routes[t.name]}
        unassigned = {t.name for t in transfers}
        allocation: Dict[str, float] = {}

        while unassigned:
            # Fair share on each link: remaining capacity over unassigned users.
            link_share: Dict[Tuple[str, str], float] = {}
            for key, capacity in remaining.items():
                users = [
                    name
                    for name in unassigned
                    if any(self._link_key(link) == key for link in routes[name])
                ]
                if users:
                    link_share[key] = capacity / len(users)
            if not link_share:
                for name in unassigned:
                    allocation[name] = min(
                        link.bandwidth_gbps for link in routes[name]
                    )
                break
            # The most constrained link fixes its users' allocation.
            bottleneck_key, share = min(link_share.items(), key=lambda item: item[1])
            fixed = [
                name
                for name in unassigned
                if any(self._link_key(link) == bottleneck_key for link in routes[name])
            ]
            for name in fixed:
                allocation[name] = share
                unassigned.discard(name)
                for link in routes[name]:
                    key = self._link_key(link)
                    remaining[key] = max(remaining[key] - share, 0.0)

        results: Dict[str, TransferResult] = {}
        for transfer in transfers:
            latency = self.topology.path_latency_us(transfer.source, transfer.destination)
            results[transfer.name] = TransferResult(
                transfer=transfer,
                bandwidth_gbps=allocation[transfer.name],
                latency_us=latency,
            )
        return results

    # -- Fig. 9 style sweeps ---------------------------------------------------

    def achieved_bandwidth(
        self,
        transfer: Transfer,
        *,
        background: Sequence[Transfer] = (),
    ) -> float:
        """End-to-end achieved bandwidth (GB/s) of one transfer.

        ``background`` transfers run concurrently and contend for shared
        links (the halo exchange of the case study).
        """
        results = self.allocate([transfer, *background])
        return results[transfer.name].achieved_gbps

    def bandwidth_sweep(
        self,
        source: str,
        destination: str,
        message_sizes: Sequence[int],
        *,
        background: Sequence[Transfer] = (),
    ) -> Dict[int, float]:
        """Achieved bandwidth for a range of message sizes (Fig. 9)."""
        sweep: Dict[int, float] = {}
        for size in message_sizes:
            transfer = Transfer(name="probe", source=source, destination=destination, size_bytes=float(size))
            sweep[int(size)] = self.achieved_bandwidth(transfer, background=background)
        return sweep

    def slowdown(
        self,
        transfer: Transfer,
        background: Sequence[Transfer],
    ) -> float:
        """Completion-time slowdown caused by the background transfers."""
        isolated = self.allocate([transfer])[transfer.name].completion_us
        contended = self.allocate([transfer, *background])[transfer.name].completion_us
        return contended / isolated - 1.0
