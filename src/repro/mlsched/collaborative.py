"""Collaborative-filtering scheduler (after Paragon, Delimitrou & Kozyrakis).

The model maintains a (workload-context x configuration) matrix of observed
normalised throughputs, factorises it with alternating least squares at a
target sparsity, and imputes the missing entries; scheduling picks the
configuration (NIC) with the best imputed throughput for the task's context
bucket.  §6.3 sweeps sparsity between 30% and 80% and settles on 75%, which
is the default here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class _Observation:
    context: int
    action: int
    throughput: float


class CollaborativeFilteringScheduler:
    """ALS matrix-factorisation over (context, action) throughputs.

    Parameters
    ----------
    n_contexts:
        Number of workload-context buckets (rows of the matrix).
    n_actions:
        Number of scheduling configurations (columns).
    rank:
        Latent factor dimensionality.
    sparsity:
        Fraction of matrix entries intentionally left unobserved during
        training (the paper's optimal value is 0.75).
    regularization, iterations:
        ALS hyper-parameters.
    """

    def __init__(
        self,
        n_contexts: int = 16,
        n_actions: int = 2,
        *,
        rank: int = 4,
        sparsity: float = 0.75,
        regularization: float = 0.1,
        iterations: int = 20,
        seed: int = 0,
    ) -> None:
        if n_contexts <= 0 or n_actions <= 0:
            raise ValueError("matrix dimensions must be positive")
        if not 0.0 <= sparsity < 1.0:
            raise ValueError("sparsity must lie in [0, 1)")
        if rank <= 0 or iterations <= 0 or regularization < 0:
            raise ValueError("invalid ALS hyper-parameters")
        self.n_contexts = n_contexts
        self.n_actions = n_actions
        self.rank = rank
        self.sparsity = sparsity
        self.regularization = regularization
        self.iterations = iterations
        self._rng = np.random.default_rng(seed)
        self._observations: List[_Observation] = []
        self._prediction: Optional[np.ndarray] = None

    # -- data ------------------------------------------------------------------

    def context_bucket(self, features: np.ndarray) -> int:
        """Hash a feature vector into a context bucket.

        Buckets are defined by the task metadata (shuffle size quartile and
        NUMA node) plus a coarse contention indicator derived from the PCIe
        bandwidth HPC features — the noisy part of the vector, which is how
        measurement error degrades this model.
        """
        features = np.asarray(features, dtype=float)
        size_log = features[-2]
        numa = int(round(features[-1]))
        pcie_activity = float(np.mean(features[8:10]))  # pcie read/write bandwidth features
        contended = 1 if pcie_activity > 0.55 else 0
        size_bucket = int(np.clip((size_log - 26.0) / 5.0 * 4, 0, 3))
        bucket = size_bucket * 4 + numa * 2 + contended
        return int(bucket % self.n_contexts)

    def record(self, features: np.ndarray, action: int, throughput: float) -> None:
        """Record an observed (context, action, throughput) triple."""
        if not 0 <= action < self.n_actions:
            raise ValueError("action out of range")
        self._observations.append(
            _Observation(context=self.context_bucket(features), action=action, throughput=float(throughput))
        )
        self._prediction = None

    # -- training ----------------------------------------------------------------

    def _observed_matrix(self) -> Tuple[np.ndarray, np.ndarray]:
        values = np.zeros((self.n_contexts, self.n_actions))
        counts = np.zeros((self.n_contexts, self.n_actions))
        for obs in self._observations:
            values[obs.context, obs.action] += obs.throughput
            counts[obs.context, obs.action] += 1
        mask = counts > 0
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(mask, values / np.maximum(counts, 1), 0.0)
        # Apply the configured sparsity by hiding a random subset of entries.
        observed = np.argwhere(mask)
        if len(observed) > 0 and self.sparsity > 0:
            keep = max(1, int(round(len(observed) * (1.0 - self.sparsity))))
            kept_indices = self._rng.choice(len(observed), size=keep, replace=False)
            sparse_mask = np.zeros_like(mask)
            for index in kept_indices:
                i, j = observed[index]
                sparse_mask[i, j] = True
            mask = sparse_mask
        return means, mask

    def fit(self) -> np.ndarray:
        """Run ALS and return the dense imputed throughput matrix."""
        if not self._observations:
            raise RuntimeError("no observations recorded yet")
        ratings, mask = self._observed_matrix()
        users = self._rng.normal(0.0, 0.1, size=(self.n_contexts, self.rank))
        items = self._rng.normal(0.0, 0.1, size=(self.n_actions, self.rank))
        eye = np.eye(self.rank) * self.regularization
        for _ in range(self.iterations):
            for i in range(self.n_contexts):
                observed = mask[i]
                if not observed.any():
                    continue
                item_subset = items[observed]
                gram = item_subset.T @ item_subset + eye
                rhs = item_subset.T @ ratings[i, observed]
                users[i] = np.linalg.solve(gram, rhs)
            for j in range(self.n_actions):
                observed = mask[:, j]
                if not observed.any():
                    continue
                user_subset = users[observed]
                gram = user_subset.T @ user_subset + eye
                rhs = user_subset.T @ ratings[observed, j]
                items[j] = np.linalg.solve(gram, rhs)
        self._prediction = users @ items.T
        # Keep the directly observed entries exact.
        self._prediction[mask] = ratings[mask]
        return self._prediction

    # -- scheduling ---------------------------------------------------------------

    def recommend(self, features: np.ndarray) -> int:
        """Pick the action with the highest imputed throughput for this context."""
        if self._prediction is None:
            self.fit()
        assert self._prediction is not None
        context = self.context_bucket(features)
        return int(np.argmax(self._prediction[context]))

    @property
    def n_observations(self) -> int:
        return len(self._observations)
