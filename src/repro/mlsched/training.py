"""Case-study experiments: training time (Fig. 10) and decision quality (§6.3).

The monitoring pipeline feeding the scheduler differs only in two ways across
configurations: the *magnitude* of the measurement error in the HPC features
and the *timeliness* of those features (the CPU implementation of BayesPerf
delivers corrected values a decision interval late).  Both factors are drawn
from this repository's own measurements (§6.2 reproduction and the Fig. 3
latency model), so the case study consumes the same numbers the rest of the
evaluation produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mlsched.collaborative import CollaborativeFilteringScheduler
from repro.mlsched.environment import ShuffleSchedulingEnv
from repro.mlsched.features import HPCFeatureExtractor
from repro.mlsched.reinforcement import ActorCriticScheduler, TrainingCurve


@dataclass(frozen=True)
class MonitoringProfile:
    """Error/timeliness profile of one monitoring configuration."""

    name: str
    error_level: float
    staleness_ticks: int = 0
    description: str = ""


#: Default profiles: error levels follow the paper's (and this repo's) §6.2
#: results; the CPU implementation of BayesPerf is additionally one decision
#: interval stale because of its ~9x read latency.
MONITORING_PROFILES: Tuple[MonitoringProfile, ...] = (
    MonitoringProfile("bayesperf-acc", 0.08, 0, "Accelerated BayesPerf: low error, fresh values"),
    MonitoringProfile("bayesperf-cpu", 0.08, 1, "Software BayesPerf: low error, one interval stale"),
    MonitoringProfile("counterminer", 0.29, 0, "CounterMiner outlier dropping"),
    MonitoringProfile("linux", 0.40, 0, "Linux time-based scaling"),
)


def _environment(profile: MonitoringProfile, seed: int) -> ShuffleSchedulingEnv:
    extractor = HPCFeatureExtractor(
        error_level=profile.error_level,
        staleness_ticks=profile.staleness_ticks,
        seed=seed,
    )
    return ShuffleSchedulingEnv(extractor, seed=seed)


def training_time_comparison(
    profiles: Sequence[MonitoringProfile] = MONITORING_PROFILES,
    *,
    iterations: int = 1200,
    seed: int = 0,
) -> Dict[str, TrainingCurve]:
    """Train the actor-critic scheduler under each monitoring profile (Fig. 10)."""
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    curves: Dict[str, TrainingCurve] = {}
    for profile in profiles:
        env = _environment(profile, seed)
        scheduler = ActorCriticScheduler(
            n_features=env.feature_spec.size, n_actions=env.n_actions, seed=seed
        )
        curves[profile.name] = scheduler.train(env, iterations, label=profile.name)
    return curves


def convergence_summary(
    curves: Dict[str, TrainingCurve], *, baseline: str = "linux"
) -> Dict[str, Dict[str, float]]:
    """Convergence iteration per profile and reduction versus the baseline."""
    if baseline not in curves:
        raise KeyError(f"baseline {baseline!r} missing from curves")
    baseline_iterations = max(curves[baseline].convergence_iteration(), 1)
    summary: Dict[str, Dict[str, float]] = {}
    for name, curve in curves.items():
        iterations = curve.convergence_iteration()
        summary[name] = {
            "convergence_iteration": float(iterations),
            "reduction_vs_baseline": 1.0 - iterations / baseline_iterations,
            "final_loss": curve.final_loss,
        }
    return summary


@dataclass
class DecisionQualityResult:
    """Decision-quality comparison for one scheduler family."""

    scheduler: str
    mean_regret: Dict[str, float]
    improvement_vs_random: Dict[str, float]
    improvement_vs_linux: Dict[str, float]


def _random_regret(env: ShuffleSchedulingEnv, episodes: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    regrets: List[float] = []
    env.reset()
    for _ in range(episodes):
        task = env._task  # noqa: SLF001 - evaluation helper
        action = int(rng.integers(0, env.n_actions))
        completion = env.completion_time_us(task, action)
        best = min(env.completion_time_us(task, a) for a in range(env.n_actions))
        regrets.append(completion / best - 1.0)
        env.reset()
    return float(np.mean(regrets))


def _evaluate_rl(profile: MonitoringProfile, *, train_iterations: int, episodes: int, seed: int) -> float:
    env = _environment(profile, seed)
    scheduler = ActorCriticScheduler(n_features=env.feature_spec.size, n_actions=env.n_actions, seed=seed)
    scheduler.train(env, train_iterations, label=profile.name)
    return scheduler.evaluate(env, episodes=episodes)["mean_regret"]


def _evaluate_cf(profile: MonitoringProfile, *, observations: int, episodes: int, seed: int) -> float:
    env = _environment(profile, seed)
    model = CollaborativeFilteringScheduler(n_actions=env.n_actions, seed=seed)
    observation = env.reset()
    rng = np.random.default_rng(seed + 1)
    for _ in range(observations):
        action = int(rng.integers(0, env.n_actions))
        task = env._task  # noqa: SLF001 - training data needs the generating task
        completion = env.completion_time_us(task, action)
        model.record(observation, action, 1.0 / completion)
        observation = env.reset()
    model.fit()
    regrets: List[float] = []
    observation = env.reset()
    for _ in range(episodes):
        action = model.recommend(observation)
        observation, _, info = env.step(action)
        regrets.append(info["regret"])
    return float(np.mean(regrets))


def decision_quality_comparison(
    profiles: Sequence[MonitoringProfile] = MONITORING_PROFILES,
    *,
    train_iterations: int = 800,
    cf_observations: int = 400,
    episodes: int = 200,
    seed: int = 0,
) -> Dict[str, DecisionQualityResult]:
    """Mean regret of both scheduler families under each monitoring profile.

    Returns one result per scheduler family ("collaborative-filtering" and
    "reinforcement-learning") with per-profile mean regret and the derived
    improvements the paper quotes (ML scheduler vs no scheduler, BayesPerf vs
    Linux inputs).
    """
    rl_regret: Dict[str, float] = {}
    cf_regret: Dict[str, float] = {}
    for profile in profiles:
        rl_regret[profile.name] = _evaluate_rl(
            profile, train_iterations=train_iterations, episodes=episodes, seed=seed
        )
        cf_regret[profile.name] = _evaluate_cf(
            profile, observations=cf_observations, episodes=episodes, seed=seed
        )

    random_baseline = _random_regret(_environment(profiles[0], seed), episodes, seed)

    def _build(name: str, regrets: Dict[str, float]) -> DecisionQualityResult:
        improvement_vs_random = {
            profile: (random_baseline - regret) / (1.0 + random_baseline)
            for profile, regret in regrets.items()
        }
        linux_regret = regrets.get("linux", random_baseline)
        improvement_vs_linux = {
            profile: (linux_regret - regret) / (1.0 + linux_regret)
            for profile, regret in regrets.items()
        }
        return DecisionQualityResult(
            scheduler=name,
            mean_regret=regrets,
            improvement_vs_random=improvement_vs_random,
            improvement_vs_linux=improvement_vs_linux,
        )

    return {
        "collaborative-filtering": _build("collaborative-filtering", cf_regret),
        "reinforcement-learning": _build("reinforcement-learning", rl_regret),
    }
