"""HPC-derived features for the IO schedulers.

The paper's models consume derived events (write/read categories, DRAM and
memory-bus bandwidth utilisation) plus task metadata (shuffle size, NUMA
node) — 32 unique HPC events in total (§6.3).  The extractor turns per-tick
event estimates into a fixed-length feature vector, and can corrupt the HPC
part of the vector with the error level of a given monitoring method, which
is how the case study couples scheduler quality to measurement quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

#: Names of the HPC-derived features, in vector order.
HPC_FEATURE_NAMES: Tuple[str, ...] = (
    "allocating_writes",
    "full_writes",
    "partial_writes",
    "non_snoop_writes",
    "demand_code_reads",
    "partial_mmio_reads",
    "dram_channel_utilization",
    "membus_utilization",
    "pcie_read_bandwidth",
    "pcie_write_bandwidth",
)

#: Names of the task metadata features appended after the HPC features.  Note
#: that whether the GPUs are currently contending for PCIe bandwidth is *not*
#: part of the task metadata — the scheduler has to infer it from the HPC
#: features, which is exactly why measurement error hurts it.
TASK_FEATURE_NAMES: Tuple[str, ...] = ("shuffle_bytes_log", "numa_node")


@dataclass(frozen=True)
class FeatureSpec:
    """Shape description of the scheduler input vector."""

    hpc_features: Tuple[str, ...] = HPC_FEATURE_NAMES
    task_features: Tuple[str, ...] = TASK_FEATURE_NAMES

    @property
    def size(self) -> int:
        return len(self.hpc_features) + len(self.task_features)


class HPCFeatureExtractor:
    """Builds scheduler feature vectors from HPC-derived activity levels.

    Parameters
    ----------
    spec:
        Feature layout.
    error_level:
        Relative error applied to the HPC part of the vector (the measurement
        error of the monitoring pipeline feeding the scheduler).  0.08 for
        BayesPerf, ~0.29 for CounterMiner, ~0.40 for plain Linux scaling.
    staleness_ticks:
        How many decision intervals old the HPC features are; models the
        higher read latency of the CPU implementation of BayesPerf.
    seed:
        Seed of the error perturbation.
    """

    def __init__(
        self,
        spec: Optional[FeatureSpec] = None,
        *,
        error_level: float = 0.0,
        staleness_ticks: int = 0,
        seed: int = 0,
    ) -> None:
        if error_level < 0:
            raise ValueError("error_level must be non-negative")
        if staleness_ticks < 0:
            raise ValueError("staleness_ticks must be non-negative")
        self.spec = spec if spec is not None else FeatureSpec()
        self.error_level = error_level
        self.staleness_ticks = staleness_ticks
        self._rng = np.random.default_rng(seed)
        self._history: list = []

    def _perturb(self, values: np.ndarray) -> np.ndarray:
        if self.error_level <= 0:
            return values
        noise = self._rng.normal(0.0, self.error_level, size=values.shape)
        return values * np.clip(1.0 + noise, 0.05, None)

    def extract(
        self,
        hpc_activity: Mapping[str, float],
        *,
        shuffle_bytes: float,
        numa_node: int,
    ) -> np.ndarray:
        """Build one feature vector.

        ``hpc_activity`` maps HPC feature names to their *true* activity
        levels; the extractor applies the configured measurement error and
        staleness before handing them to the scheduler.
        """
        hpc = np.array(
            [float(hpc_activity.get(name, 0.0)) for name in self.spec.hpc_features], dtype=float
        )
        hpc = self._perturb(hpc)
        self._history.append(hpc)
        if self.staleness_ticks > 0 and len(self._history) > self.staleness_ticks:
            hpc = self._history[-1 - self.staleness_ticks]
        task = np.array([np.log2(max(shuffle_bytes, 1.0)), float(numa_node)], dtype=float)
        return np.concatenate([hpc, task])

    def reset(self) -> None:
        """Clear the staleness history (start of a new episode)."""
        self._history.clear()
