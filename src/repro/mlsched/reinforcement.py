"""Actor-critic reinforcement-learning scheduler.

The paper's RL model is a four-layer fully connected ReLU network (36-16-16-2
neurons) trained with actor-critic reinforcement learning whose loss is the
normalised shuffle completion time (§6.3).  The NumPy implementation below
follows that structure: a shared trunk, a softmax policy head over the
action choices (two NICs in the case study; candidate event groupings when
the scenario grid's ``"rl"`` counter-scheduling policy reuses this class),
a scalar value head as the critic/baseline, and advantage-weighted
policy-gradient updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mlsched.environment import ShuffleSchedulingEnv


@dataclass
class TrainingCurve:
    """Loss trajectory of one training run."""

    label: str
    losses: List[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.losses)

    def smoothed(self, window: int = 25) -> np.ndarray:
        """Moving-average loss curve."""
        if window <= 0:
            raise ValueError("window must be positive")
        losses = np.asarray(self.losses, dtype=float)
        if losses.size == 0:
            return losses
        kernel = np.ones(min(window, losses.size)) / min(window, losses.size)
        return np.convolve(losses, kernel, mode="valid")

    def convergence_iteration(self, threshold: float = 0.1, window: int = 25) -> int:
        """First iteration at which the smoothed loss stays within *threshold* of its floor."""
        smoothed = self.smoothed(window)
        if smoothed.size == 0:
            return 0
        floor = float(np.min(smoothed))
        target = floor * (1.0 + threshold) if floor > 0 else floor + threshold
        for index, value in enumerate(smoothed):
            if value <= target and np.all(smoothed[index:] <= target * 1.05):
                return index
        return len(smoothed) - 1

    @property
    def final_loss(self) -> float:
        smoothed = self.smoothed()
        return float(smoothed[-1]) if smoothed.size else float("nan")


class ActorCriticScheduler:
    """A small NumPy actor-critic network over the scheduler feature vector.

    Parameters
    ----------
    n_features:
        Input dimensionality (13 for the default feature spec; the paper's
        36-wide first layer is retained as the hidden width).
    n_actions:
        Number of NIC choices.
    hidden:
        Hidden layer widths; defaults to the paper's (36, 16, 16).
    learning_rate, entropy_bonus, seed:
        Optimisation hyper-parameters.
    """

    def __init__(
        self,
        n_features: int,
        n_actions: int = 2,
        *,
        hidden: Sequence[int] = (36, 16, 16),
        learning_rate: float = 0.01,
        entropy_bonus: float = 0.01,
        seed: int = 0,
    ) -> None:
        if n_features <= 0 or n_actions <= 1:
            raise ValueError("invalid network dimensions")
        self.n_features = n_features
        self.n_actions = n_actions
        self.learning_rate = learning_rate
        self.entropy_bonus = entropy_bonus
        self._rng = np.random.default_rng(seed)

        sizes = [n_features, *hidden]
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self._weights.append(self._rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))
        trunk_out = sizes[-1]
        self._policy_w = self._rng.normal(0.0, 0.1, size=(trunk_out, n_actions))
        self._policy_b = np.zeros(n_actions)
        self._value_w = self._rng.normal(0.0, 0.1, size=(trunk_out, 1))
        self._value_b = np.zeros(1)
        self._feature_scale: Optional[np.ndarray] = None

    # -- forward -----------------------------------------------------------------

    def _normalise(self, features: np.ndarray) -> np.ndarray:
        if self._feature_scale is None:
            self._feature_scale = np.maximum(np.abs(features), 1.0)
        else:
            self._feature_scale = np.maximum(self._feature_scale, np.abs(features))
        return features / self._feature_scale

    def _trunk(self, x: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        activations = [x]
        h = x
        for weight, bias in zip(self._weights, self._biases):
            h = np.maximum(h @ weight + bias, 0.0)
            activations.append(h)
        return h, activations

    def policy(self, features: np.ndarray) -> np.ndarray:
        """Action probabilities for one feature vector."""
        x = self._normalise(np.asarray(features, dtype=float))
        trunk, _ = self._trunk(x)
        logits = trunk @ self._policy_w + self._policy_b
        logits -= logits.max()
        exp = np.exp(logits)
        return exp / exp.sum()

    def value(self, features: np.ndarray) -> float:
        """Critic estimate of the (negative normalised) completion time."""
        x = self._normalise(np.asarray(features, dtype=float))
        trunk, _ = self._trunk(x)
        return float((trunk @ self._value_w + self._value_b)[0])

    def act(self, features: np.ndarray, *, greedy: bool = False) -> int:
        """Sample (or take the arg-max of) the policy."""
        probabilities = self.policy(features)
        if greedy:
            return int(np.argmax(probabilities))
        return int(self._rng.choice(self.n_actions, p=probabilities))

    # -- learning -----------------------------------------------------------------

    def update(self, features: np.ndarray, action: int, reward: float) -> float:
        """One actor-critic update; returns the (positive) loss value.

        The loss reported to callers is the normalised completion time
        (``-reward``), matching Fig. 10's y-axis where 1.0 is the isolated
        (perfectly scheduled) completion time.
        """
        x = self._normalise(np.asarray(features, dtype=float))
        trunk, activations = self._trunk(x)
        logits = trunk @ self._policy_w + self._policy_b
        logits -= logits.max()
        exp = np.exp(logits)
        probabilities = exp / exp.sum()
        value = float((trunk @ self._value_w + self._value_b)[0])
        advantage = reward - value

        # Policy head gradient (REINFORCE with critic baseline + entropy bonus).
        one_hot = np.zeros(self.n_actions)
        one_hot[action] = 1.0
        dlogits = (one_hot - probabilities) * advantage
        log_probabilities = np.log(probabilities + 1e-9)
        entropy_gradient = -probabilities * (
            log_probabilities - float(np.sum(probabilities * log_probabilities))
        )
        dlogits += self.entropy_bonus * entropy_gradient
        grad_policy_w = np.outer(trunk, dlogits)
        grad_policy_b = dlogits

        # Value head gradient (squared error to the observed reward).
        dvalue = advantage  # d/dv of 0.5*(reward - v)^2 is -(reward - v); ascent form
        grad_value_w = np.outer(trunk, np.array([dvalue]))
        grad_value_b = np.array([dvalue])

        # Backpropagate the policy gradient through the trunk.
        dtrunk = self._policy_w @ dlogits + (self._value_w[:, 0] * dvalue)
        grads_w: List[np.ndarray] = [np.zeros_like(w) for w in self._weights]
        grads_b: List[np.ndarray] = [np.zeros_like(b) for b in self._biases]
        delta = dtrunk
        for layer in range(len(self._weights) - 1, -1, -1):
            active = activations[layer + 1] > 0
            delta = delta * active
            grads_w[layer] = np.outer(activations[layer], delta)
            grads_b[layer] = delta
            delta = self._weights[layer] @ delta

        lr = self.learning_rate
        self._policy_w += lr * grad_policy_w
        self._policy_b += lr * grad_policy_b
        self._value_w += lr * grad_value_w
        self._value_b += lr * grad_value_b
        for layer in range(len(self._weights)):
            self._weights[layer] += lr * grads_w[layer]
            self._biases[layer] += lr * grads_b[layer]
        return float(-reward)

    def train(
        self,
        env: ShuffleSchedulingEnv,
        iterations: int,
        *,
        label: str = "actor-critic",
    ) -> TrainingCurve:
        """Train on the environment for a number of scheduling decisions."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        curve = TrainingCurve(label=label)
        observation = env.reset()
        for _ in range(iterations):
            action = self.act(observation)
            next_observation, reward, _ = env.step(action)
            loss = self.update(observation, action, reward)
            curve.losses.append(loss)
            observation = next_observation
        return curve

    def evaluate(self, env: ShuffleSchedulingEnv, episodes: int = 100) -> Dict[str, float]:
        """Greedy-policy evaluation: average regret and completion time."""
        if episodes <= 0:
            raise ValueError("episodes must be positive")
        regrets: List[float] = []
        completions: List[float] = []
        observation = env.reset()
        for _ in range(episodes):
            action = self.act(observation, greedy=True)
            observation, _, info = env.step(action)
            regrets.append(info["regret"])
            completions.append(info["completion_us"])
        return {
            "mean_regret": float(np.mean(regrets)),
            "mean_completion_us": float(np.mean(completions)),
        }
