"""ML-based IO scheduling case study (§6.3).

The paper demonstrates BayesPerf's downstream value by feeding corrected HPC
measurements into two ML-based schedulers that decide which NIC a Spark
shuffle should use while GPUs contend for PCIe bandwidth: a collaborative
filtering model (after Paragon) and an actor-critic reinforcement-learning
model (after the authors' prior scheduler).  This package provides the
scheduling environment (built on the PCIe contention model), both model
families, and the training/decision-quality experiments.

In the scenario grid the actor-critic model doubles as a *counter*
scheduler: ``SchedulerSpec(policy="rl")`` has
:func:`repro.scheduling.rl_schedule` train an :class:`ActorCriticScheduler`
in-process over candidate event groupings and roll it out greedily —
deterministic per seed, selected purely through the spec.
"""

from repro.mlsched.features import FeatureSpec, HPCFeatureExtractor
from repro.mlsched.environment import ShuffleSchedulingEnv, ShuffleTask
from repro.mlsched.collaborative import CollaborativeFilteringScheduler
from repro.mlsched.reinforcement import ActorCriticScheduler, TrainingCurve
from repro.mlsched.training import (
    MONITORING_PROFILES,
    MonitoringProfile,
    decision_quality_comparison,
    training_time_comparison,
)

__all__ = [
    "FeatureSpec",
    "HPCFeatureExtractor",
    "ShuffleSchedulingEnv",
    "ShuffleTask",
    "CollaborativeFilteringScheduler",
    "ActorCriticScheduler",
    "TrainingCurve",
    "MonitoringProfile",
    "MONITORING_PROFILES",
    "training_time_comparison",
    "decision_quality_comparison",
]
