"""The shuffle-scheduling environment.

The scheduler must decide which NIC carries a distributed-shuffle transfer
while worker GPUs run a halo exchange over the same PCIe fabric.  Choosing a
NIC whose path shares links with the halo exchange (or sits across the
socket from the data) lengthens the shuffle; the reward is the negative
normalised completion time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.interconnect.topology import PCIeTopology, build_case_study_topology
from repro.interconnect.transfer import ContentionModel, Transfer
from repro.mlsched.features import FeatureSpec, HPCFeatureExtractor

#: Action space: which NIC carries the shuffle.
ACTIONS: Tuple[str, ...] = ("nic0", "nic1")


@dataclass(frozen=True)
class ShuffleTask:
    """One shuffle that must be scheduled.

    ``halo_active`` marks a GPU-to-GPU halo exchange on socket 1 (contending
    with NIC1's uplink); ``dataload_active`` marks training-data transfers to
    the training GPU on socket 0 (contending with NIC0's uplink).  Neither is
    visible to the scheduler directly — it has to infer them from the HPC
    features.
    """

    size_bytes: float
    numa_node: int
    halo_active: bool
    dataload_active: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.numa_node not in (0, 1):
            raise ValueError("numa_node must be 0 or 1")


class ShuffleSchedulingEnv:
    """Contention-aware NIC selection environment.

    Parameters
    ----------
    extractor:
        Feature extractor (carries the monitoring pipeline's error level).
    topology:
        PCIe topology; defaults to the case-study system.
    halo_bytes:
        Size of the concurrent GPU-to-GPU halo exchange.
    halo_probability:
        Probability that the halo exchange is active for a given task.
    seed:
        Seed for task generation.
    """

    def __init__(
        self,
        extractor: Optional[HPCFeatureExtractor] = None,
        *,
        topology: Optional[PCIeTopology] = None,
        halo_bytes: float = 512e6,
        halo_probability: float = 0.7,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= halo_probability <= 1.0:
            raise ValueError("halo_probability must lie in [0, 1]")
        self.topology = topology if topology is not None else build_case_study_topology()
        self.contention = ContentionModel(self.topology)
        self.extractor = extractor if extractor is not None else HPCFeatureExtractor()
        self.halo_bytes = halo_bytes
        self.halo_probability = halo_probability
        self._rng = np.random.default_rng(seed)
        self._task: Optional[ShuffleTask] = None

    # -- task generation --------------------------------------------------------

    def sample_task(self) -> ShuffleTask:
        """Draw a random shuffle task (size, data placement, background)."""
        size = float(2 ** self._rng.uniform(26, 31))  # 64 MB .. 2 GB
        numa = int(self._rng.integers(0, 2))
        halo = bool(self._rng.random() < self.halo_probability)
        dataload = bool(self._rng.random() < self.halo_probability)
        self._task = ShuffleTask(
            size_bytes=size, numa_node=numa, halo_active=halo, dataload_active=dataload
        )
        return self._task

    def reset(self) -> np.ndarray:
        """Start a new episode and return the first observation."""
        self.extractor.reset()
        task = self.sample_task()
        return self.observe(task)

    # -- observation -------------------------------------------------------------

    def _true_hpc_activity(self, task: ShuffleTask) -> Dict[str, float]:
        """Ground-truth activity levels the PMU would report for this state.

        The socket-1 halo exchange shows up in the PCIe payload and non-snoop
        write counters; the socket-0 training-data loads show up in the DRAM
        channel, allocating-write and MMIO-read counters.  The scheduler has
        to tell the two apart from these (noisy) signals.
        """
        halo = 1.0 if task.halo_active else 0.0
        dataload = 1.0 if task.dataload_active else 0.0
        size_factor = task.size_bytes / 2**30
        return {
            "allocating_writes": 0.2 + 0.55 * dataload + 0.05 * size_factor,
            "full_writes": 0.25 + 0.3 * halo,
            "partial_writes": 0.1 + 0.05 * size_factor,
            "non_snoop_writes": 0.15 + 0.5 * halo,
            "demand_code_reads": 0.2 + 0.35 * dataload,
            "partial_mmio_reads": 0.05 + 0.45 * dataload,
            "dram_channel_utilization": 0.25 + 0.45 * dataload + 0.1 * size_factor,
            "membus_utilization": 0.3 + 0.25 * halo + 0.2 * dataload,
            "pcie_read_bandwidth": 0.2 + 0.6 * halo + 0.1 * dataload,
            "pcie_write_bandwidth": 0.25 + 0.5 * halo + 0.15 * dataload,
        }

    def observe(self, task: Optional[ShuffleTask] = None) -> np.ndarray:
        """Feature vector for the current (or supplied) task."""
        task = task if task is not None else self._task
        if task is None:
            raise RuntimeError("call reset() or sample_task() before observe()")
        return self.extractor.extract(
            self._true_hpc_activity(task),
            shuffle_bytes=task.size_bytes,
            numa_node=task.numa_node,
        )

    # -- dynamics -----------------------------------------------------------------

    def _background_transfers(self, task: ShuffleTask) -> List[Transfer]:
        background: List[Transfer] = []
        if task.halo_active:
            background.extend(
                [
                    Transfer(name="halo-a", source="gpu0", destination="gpu2", size_bytes=self.halo_bytes),
                    Transfer(name="halo-b", source="gpu3", destination="gpu1", size_bytes=self.halo_bytes),
                ]
            )
        if task.dataload_active:
            background.append(
                Transfer(
                    name="dataload",
                    source="mem0",
                    destination="train_gpu",
                    size_bytes=self.halo_bytes,
                )
            )
        return background

    def completion_time_us(self, task: ShuffleTask, action: int) -> float:
        """Shuffle completion time (µs) for a NIC choice."""
        if action not in (0, 1):
            raise ValueError("action must be 0 (nic0) or 1 (nic1)")
        nic = ACTIONS[action]
        source = f"mem{task.numa_node}"
        shuffle = Transfer(name="shuffle", source=source, destination=nic, size_bytes=task.size_bytes)
        results = self.contention.allocate([shuffle, *self._background_transfers(task)])
        return results["shuffle"].completion_us

    def best_action(self, task: Optional[ShuffleTask] = None) -> int:
        """The oracle NIC choice for a task."""
        task = task if task is not None else self._task
        if task is None:
            raise RuntimeError("no task sampled yet")
        times = [self.completion_time_us(task, action) for action in range(len(ACTIONS))]
        return int(np.argmin(times))

    def step(self, action: int) -> Tuple[np.ndarray, float, Dict[str, float]]:
        """Apply a NIC choice; returns (next observation, reward, info).

        The reward is the negative completion time normalised by the best
        achievable completion time for the task, so a perfect decision earns
        -1.0 and worse decisions earn more negative rewards.
        """
        if self._task is None:
            raise RuntimeError("call reset() before step()")
        task = self._task
        completion = self.completion_time_us(task, action)
        best = min(self.completion_time_us(task, a) for a in range(len(ACTIONS)))
        reward = -completion / max(best, 1e-9)
        info = {
            "completion_us": completion,
            "best_us": best,
            "regret": completion / max(best, 1e-9) - 1.0,
            "optimal_action": float(self.best_action(task)),
        }
        observation = self.reset()
        return observation, float(reward), info

    @property
    def feature_spec(self) -> FeatureSpec:
        return self.extractor.spec

    @property
    def n_actions(self) -> int:
        return len(ACTIONS)
