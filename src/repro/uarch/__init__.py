"""Synthetic machine model.

The paper measures real Intel SkyLake and IBM Power9 machines.  This package
replaces them with a discrete-time machine model that, for every scheduler
tick, produces ground-truth values for all semantic quantities in
:mod:`repro.events.semantics`.  The generated values satisfy every relation in
the standard invariant library *exactly*, mirroring the fact that real
hardware satisfies its own microarchitectural identities; measurement error is
then introduced exclusively by the PMU sampling model (:mod:`repro.pmu`).
"""

from repro.uarch.profile import PhaseProfile, Phase, WorkloadSpec
from repro.uarch.machine import Machine, MachineConfig, MachineTrace
from repro.uarch.synthesis import synthesize_semantics

__all__ = [
    "PhaseProfile",
    "Phase",
    "WorkloadSpec",
    "Machine",
    "MachineConfig",
    "MachineTrace",
    "synthesize_semantics",
]
