"""The synthetic machine: workload execution as a semantic ground-truth trace."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.events import semantics as sem
from repro.uarch.profile import WorkloadSpec
from repro.uarch.synthesis import synthesize_semantics


@dataclass(frozen=True)
class MachineConfig:
    """Static description of the simulated machine.

    Only a handful of parameters influence ground-truth generation; the
    remaining fields (cores, sockets, TDP) are used by the accelerator model
    and the experiment harness when reporting system-level numbers.
    """

    name: str = "x86_64-skylake"
    cores_per_socket: int = 18
    sockets: int = 2
    smt_threads: int = 2
    frequency_ghz: float = 2.1
    tdp_watts: float = 100.0
    tick_seconds: float = 1e-3
    #: Standard deviation of the run-to-run intensity offset (log scale);
    #: models cross-run nondeterminism such as memory layout and OS activity.
    run_variation: float = 0.02
    #: Standard deviation of the per-tick jitter applied to phase rate
    #: parameters (miss ratios etc.), independent of the common-mode burst.
    rate_jitter: float = 0.03

    def __post_init__(self) -> None:
        if self.cores_per_socket <= 0 or self.sockets <= 0 or self.smt_threads <= 0:
            raise ValueError("core/socket/thread counts must be positive")
        if self.frequency_ghz <= 0 or self.tick_seconds <= 0:
            raise ValueError("frequency and tick duration must be positive")
        if self.run_variation < 0 or self.rate_jitter < 0:
            raise ValueError("variation parameters must be non-negative")

    @property
    def total_cores(self) -> int:
        return self.cores_per_socket * self.sockets

    @property
    def cycles_per_tick(self) -> float:
        return self.frequency_ghz * 1e9 * self.tick_seconds


#: Profile rate fields that receive independent per-tick jitter.
_JITTERED_RATES: Tuple[str, ...] = (
    "branch_mispredict_rate",
    "l1d_miss_rate",
    "l1i_miss_rate",
    "l2_miss_rate",
    "llc_miss_rate",
    "writeback_fraction",
    "dtlb_miss_rate",
    "itlb_miss_rate",
    "uop_cancel_rate",
    "core_stall_per_instruction",
    "dma_transactions_per_tick",
)


@dataclass
class MachineTrace:
    """Ground-truth semantic values for every tick of one run."""

    workload: str
    config: MachineConfig
    ticks: List[Dict[str, float]] = field(default_factory=list)
    intensities: List[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ticks)

    def __getitem__(self, tick: int) -> Dict[str, float]:
        return self.ticks[tick]

    def semantic_series(self, semantic: str) -> np.ndarray:
        """Time series of one semantic quantity across the trace."""
        return np.array([values[semantic] for values in self.ticks], dtype=float)

    def totals(self) -> Dict[str, float]:
        """Sum of every semantic quantity over the whole trace."""
        if not self.ticks:
            return {}
        totals: Dict[str, float] = {key: 0.0 for key in self.ticks[0]}
        for values in self.ticks:
            for key, value in values.items():
                totals[key] += value
        return totals

    def window_totals(self, start: int, stop: int) -> Dict[str, float]:
        """Sum of every semantic quantity over ``[start, stop)``."""
        if not 0 <= start < stop <= len(self.ticks):
            raise ValueError(f"invalid window [{start}, {stop}) for trace of length {len(self)}")
        totals: Dict[str, float] = {key: 0.0 for key in self.ticks[start]}
        for values in self.ticks[start:stop]:
            for key, value in values.items():
                totals[key] += value
        return totals


class Machine:
    """Executes a workload specification into a ground-truth trace.

    Parameters
    ----------
    config:
        Machine description.
    workload:
        Phase-based workload specification.
    seed:
        Seed controlling both the run-to-run offset and per-tick randomness;
        two machines with different seeds model two runs of the same
        application.
    """

    def __init__(self, config: MachineConfig, workload: WorkloadSpec, seed: int = 0) -> None:
        self.config = config
        self.workload = workload
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        # Run-level offset: the whole run is slightly faster/slower than nominal.
        self._run_offset = float(
            np.exp(self._rng.normal(0.0, config.run_variation)) if config.run_variation > 0 else 1.0
        )

    def run(self, n_ticks: int) -> MachineTrace:
        """Generate a ground-truth trace of *n_ticks* scheduler ticks."""
        if n_ticks <= 0:
            raise ValueError("n_ticks must be positive")
        trace = MachineTrace(workload=self.workload.name, config=self.config)
        log_intensity = 0.0
        for tick in range(n_ticks):
            profile = self.workload.profile_at(tick)
            sigma = profile.burstiness
            phi = profile.burst_correlation
            if sigma > 0:
                innovation_scale = sigma * np.sqrt(max(1.0 - phi * phi, 1e-12))
                log_intensity = phi * log_intensity + self._rng.normal(0.0, innovation_scale)
            else:
                log_intensity = 0.0
            intensity = float(np.exp(log_intensity)) * self._run_offset

            jitter = {}
            if self.config.rate_jitter > 0:
                for name in _JITTERED_RATES:
                    jitter[name] = float(
                        np.exp(self._rng.normal(0.0, self.config.rate_jitter))
                    )
            values = synthesize_semantics(profile, intensity=intensity, rate_jitter=jitter)
            trace.ticks.append(values)
            trace.intensities.append(intensity)
        return trace

    def run_workload(self) -> MachineTrace:
        """Generate a trace covering exactly one pass of the workload's phases."""
        return self.run(self.workload.total_ticks)
