"""Workload phase profiles.

A workload is a sequence of phases; each phase fixes the *rates* at which the
machine produces microarchitectural activity (instructions per tick, miss
ratios, DMA traffic, and so on).  Phase changes plus within-phase burstiness
are what make stale, extrapolated counter values wrong — the error source
BayesPerf corrects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class PhaseProfile:
    """Rates characterising one execution phase.

    All ``*_rate``/``*_fraction`` fields are dimensionless ratios; the
    ``*_per_tick`` fields are absolute counts per scheduler tick.
    """

    instructions_per_tick: float = 2.0e6
    branch_fraction: float = 0.18
    branch_taken_fraction: float = 0.6
    branch_mispredict_rate: float = 0.03
    load_fraction: float = 0.27
    store_fraction: float = 0.12
    l1d_miss_rate: float = 0.06
    l1i_access_per_instruction: float = 0.3
    l1i_miss_rate: float = 0.01
    l2_miss_rate: float = 0.35
    llc_miss_rate: float = 0.4
    writeback_fraction: float = 0.45
    dma_transactions_per_tick: float = 2.0e3
    dtlb_miss_rate: float = 0.004
    itlb_miss_rate: float = 0.001
    uops_per_instruction: float = 1.3
    uop_cancel_rate: float = 0.04
    core_stall_per_instruction: float = 0.08
    l2_pending_stall_per_miss: float = 8.0
    dram_latency_stall_per_miss: float = 40.0
    dram_bw_stall_per_access: float = 2.0
    pcie_read_share: float = 0.55
    context_switches_per_tick: float = 12.0
    interrupts_per_tick: float = 30.0
    #: Standard deviation of the per-tick log-normal intensity modulation.
    burstiness: float = 0.55
    #: AR(1) correlation of the intensity modulation between consecutive ticks.
    burst_correlation: float = 0.45

    def __post_init__(self) -> None:
        if self.instructions_per_tick <= 0:
            raise ValueError("instructions_per_tick must be positive")
        for name in (
            "branch_fraction",
            "branch_taken_fraction",
            "branch_mispredict_rate",
            "load_fraction",
            "store_fraction",
            "l1d_miss_rate",
            "l1i_miss_rate",
            "l2_miss_rate",
            "llc_miss_rate",
            "writeback_fraction",
            "dtlb_miss_rate",
            "itlb_miss_rate",
            "uop_cancel_rate",
            "pcie_read_share",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        if self.load_fraction + self.store_fraction > 1.0:
            raise ValueError("load_fraction + store_fraction cannot exceed 1")
        if not 0.0 <= self.burst_correlation < 1.0:
            raise ValueError("burst_correlation must lie in [0, 1)")
        if self.burstiness < 0:
            raise ValueError("burstiness must be non-negative")

    def scaled(self, intensity: float) -> "PhaseProfile":
        """A copy with the absolute activity levels scaled by *intensity*."""
        if intensity <= 0:
            raise ValueError("intensity must be positive")
        return replace(
            self,
            instructions_per_tick=self.instructions_per_tick * intensity,
            dma_transactions_per_tick=self.dma_transactions_per_tick * intensity,
        )


@dataclass(frozen=True)
class Phase:
    """One phase of a workload: a profile active for a number of ticks."""

    profile: PhaseProfile
    duration_ticks: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.duration_ticks <= 0:
            raise ValueError("phase duration must be positive")


@dataclass(frozen=True)
class WorkloadSpec:
    """A named sequence of phases, optionally repeated to fill a trace."""

    name: str
    phases: Tuple[Phase, ...]
    category: str = "generic"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("workload name must be non-empty")
        if not self.phases:
            raise ValueError(f"workload {self.name!r} must have at least one phase")

    @property
    def total_ticks(self) -> int:
        """Ticks covered by one pass over the phase list."""
        return sum(phase.duration_ticks for phase in self.phases)

    def profile_at(self, tick: int) -> PhaseProfile:
        """Profile active at *tick*; the phase sequence repeats cyclically."""
        if tick < 0:
            raise ValueError("tick must be non-negative")
        position = tick % self.total_ticks
        for phase in self.phases:
            if position < phase.duration_ticks:
                return phase.profile
            position -= phase.duration_ticks
        raise AssertionError("unreachable")  # pragma: no cover

    def phase_index_at(self, tick: int) -> int:
        """Index of the phase active at *tick* (cyclic)."""
        if tick < 0:
            raise ValueError("tick must be non-negative")
        position = tick % self.total_ticks
        for index, phase in enumerate(self.phases):
            if position < phase.duration_ticks:
                return index
            position -= phase.duration_ticks
        raise AssertionError("unreachable")  # pragma: no cover

    def phase_boundaries(self, n_ticks: int) -> Tuple[int, ...]:
        """Tick indices (< n_ticks) at which a new phase begins."""
        boundaries: List[int] = []
        tick = 0
        while tick < n_ticks:
            boundaries.append(tick)
            tick += self.phases[self.phase_index_at(tick)].duration_ticks
        return tuple(boundaries)
