"""Constructive synthesis of semantic ground truth for one tick.

Given a phase profile and a per-tick intensity, every semantic quantity is
derived constructively so that the standard invariant library is satisfied
exactly.  This mirrors real hardware: the identities in vendor manuals hold on
the true event streams; only measurement introduces error.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.events import semantics as sem
from repro.uarch.profile import PhaseProfile


def synthesize_semantics(
    profile: PhaseProfile,
    intensity: float = 1.0,
    rate_jitter: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Ground-truth semantic values for a single tick.

    Parameters
    ----------
    profile:
        Active phase profile.
    intensity:
        Multiplicative modulation of the phase's activity level (the bursty
        common-mode factor).
    rate_jitter:
        Optional per-rate multiplicative jitter, keyed by profile field name
        (e.g. ``{"l1d_miss_rate": 1.05}``).  Values default to 1.0.
    """
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    jitter = dict(rate_jitter) if rate_jitter else {}

    def rate(name: str) -> float:
        return getattr(profile, name) * jitter.get(name, 1.0)

    instructions = profile.instructions_per_tick * intensity * jitter.get("instructions_per_tick", 1.0)

    branches = rate("branch_fraction") * instructions
    branch_taken = min(rate("branch_taken_fraction"), 1.0) * branches
    branch_not_taken = branches - branch_taken
    branch_misses = min(rate("branch_mispredict_rate"), 1.0) * branches

    loads = rate("load_fraction") * instructions
    stores = rate("store_fraction") * instructions
    mem_inst = loads + stores

    l1d_access = mem_inst
    l1d_miss = min(rate("l1d_miss_rate"), 1.0) * l1d_access
    l1d_hit = l1d_access - l1d_miss

    l1i_access = rate("l1i_access_per_instruction") * instructions
    l1i_miss = min(rate("l1i_miss_rate"), 1.0) * l1i_access

    l2_access = l1d_miss + l1i_miss
    l2_miss = min(rate("l2_miss_rate"), 1.0) * l2_access
    l2_hit = l2_access - l2_miss

    llc_access = l2_miss
    llc_miss = min(rate("llc_miss_rate"), 1.0) * llc_access
    llc_hit = llc_access - llc_miss

    offcore_demand_reads = llc_miss
    offcore_writebacks = min(rate("writeback_fraction"), 1.0) * llc_miss

    dma_transactions = profile.dma_transactions_per_tick * intensity * jitter.get(
        "dma_transactions_per_tick", 1.0
    )
    dma_bytes = sem.DMA_TRANSACTION_BYTES * dma_transactions
    dma_lines = sem.DMA_TRANSACTION_BYTES / sem.CACHE_LINE_BYTES

    dram_reads = offcore_demand_reads + dma_lines * dma_transactions
    dram_writes = offcore_writebacks
    dram_accesses = dram_reads + dram_writes
    dram_bytes = sem.CACHE_LINE_BYTES * dram_accesses

    dtlb_miss = min(rate("dtlb_miss_rate"), 1.0) * mem_inst
    itlb_miss = min(rate("itlb_miss_rate"), 1.0) * l1i_access
    page_walks = dtlb_miss + itlb_miss

    uops_retired = rate("uops_per_instruction") * instructions
    uops_cancelled = min(rate("uop_cancel_rate"), 1.0) * uops_retired
    uops_issued = uops_retired + uops_cancelled
    issue_slots_used = uops_issued

    stall_frontend = 12.0 * branch_misses + 18.0 * l1i_miss
    stall_l2_pending = rate("l2_pending_stall_per_miss") * l2_miss
    stall_dram_lat = rate("dram_latency_stall_per_miss") * llc_miss
    stall_dram_bw = rate("dram_bw_stall_per_access") * dram_accesses
    stall_mem = stall_l2_pending + stall_dram_lat + stall_dram_bw
    stall_core = rate("core_stall_per_instruction") * instructions
    stall_backend = stall_core + stall_mem
    stall_total = stall_frontend + stall_backend

    active_cycles = uops_issued / sem.PIPELINE_WIDTH
    cycles = active_cycles + stall_total
    issue_slots_total = sem.PIPELINE_WIDTH * cycles
    issue_slots_empty = issue_slots_total - issue_slots_used

    pcie_total_bytes = dma_bytes
    pcie_transactions = pcie_total_bytes / sem.DMA_TRANSACTION_BYTES
    pcie_read_bytes = min(rate("pcie_read_share"), 1.0) * pcie_total_bytes
    pcie_write_bytes = pcie_total_bytes - pcie_read_bytes

    context_switches = profile.context_switches_per_tick * jitter.get("context_switches_per_tick", 1.0)
    interrupts = profile.interrupts_per_tick * jitter.get("interrupts_per_tick", 1.0)

    return {
        sem.CYCLES: cycles,
        sem.ACTIVE_CYCLES: active_cycles,
        sem.INSTRUCTIONS: instructions,
        sem.UOPS_ISSUED: uops_issued,
        sem.UOPS_RETIRED: uops_retired,
        sem.UOPS_CANCELLED: uops_cancelled,
        sem.ISSUE_SLOTS_TOTAL: issue_slots_total,
        sem.ISSUE_SLOTS_USED: issue_slots_used,
        sem.ISSUE_SLOTS_EMPTY: issue_slots_empty,
        sem.BRANCHES: branches,
        sem.BRANCH_TAKEN: branch_taken,
        sem.BRANCH_NOT_TAKEN: branch_not_taken,
        sem.BRANCH_MISSES: branch_misses,
        sem.MEM_INST_RETIRED: mem_inst,
        sem.LOADS_RETIRED: loads,
        sem.STORES_RETIRED: stores,
        sem.L1D_ACCESS: l1d_access,
        sem.L1D_HIT: l1d_hit,
        sem.L1D_MISS: l1d_miss,
        sem.L1I_ACCESS: l1i_access,
        sem.L1I_MISS: l1i_miss,
        sem.L2_ACCESS: l2_access,
        sem.L2_HIT: l2_hit,
        sem.L2_MISS: l2_miss,
        sem.LLC_ACCESS: llc_access,
        sem.LLC_HIT: llc_hit,
        sem.LLC_MISS: llc_miss,
        sem.DTLB_MISS: dtlb_miss,
        sem.ITLB_MISS: itlb_miss,
        sem.PAGE_WALKS: page_walks,
        sem.DRAM_READS: dram_reads,
        sem.DRAM_WRITES: dram_writes,
        sem.DRAM_ACCESSES: dram_accesses,
        sem.DRAM_BYTES: dram_bytes,
        sem.DMA_TRANSACTIONS: dma_transactions,
        sem.DMA_BYTES: dma_bytes,
        sem.OFFCORE_DEMAND_READS: offcore_demand_reads,
        sem.OFFCORE_WRITEBACKS: offcore_writebacks,
        sem.STALL_CYCLES_TOTAL: stall_total,
        sem.STALL_FRONTEND: stall_frontend,
        sem.STALL_BACKEND: stall_backend,
        sem.STALL_CORE: stall_core,
        sem.STALL_MEM: stall_mem,
        sem.STALL_DRAM_BW: stall_dram_bw,
        sem.STALL_DRAM_LAT: stall_dram_lat,
        sem.STALL_L2_PENDING: stall_l2_pending,
        sem.PCIE_READ_BYTES: pcie_read_bytes,
        sem.PCIE_WRITE_BYTES: pcie_write_bytes,
        sem.PCIE_TOTAL_BYTES: pcie_total_bytes,
        sem.PCIE_TRANSACTIONS: pcie_transactions,
        sem.CONTEXT_SWITCHES: context_switches,
        sem.INTERRUPTS: interrupts,
    }
