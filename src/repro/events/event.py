"""Hardware event specifications.

An :class:`EventSpec` describes one countable hardware event: its
vendor-facing name, the semantic quantity it measures, which class of counter
register can count it, and any placement constraints (specific register
indices, extra MSR requirement, per-socket collection).  These are the same
attributes the paper's scheduler must respect when checking configuration
validity (§4, "Checking Validity of the Configuration").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.events import semantics as sem


class EventDomain(enum.Enum):
    """Coarse grouping of events by the unit that produces them."""

    CORE = "core"
    FRONTEND = "frontend"
    BRANCH = "branch"
    CACHE = "cache"
    TLB = "tlb"
    MEMORY = "memory"
    OFFCORE = "offcore"
    INTERCONNECT = "interconnect"
    OS = "os"


class EventKind(enum.Enum):
    """Whether an event is bound to a fixed counter or is programmable."""

    FIXED = "fixed"
    PROGRAMMABLE = "programmable"


class CollectionScope(enum.Enum):
    """Granularity at which an event is collected."""

    THREAD = "thread"
    CORE = "core"
    SOCKET = "socket"


@dataclass(frozen=True)
class EventSpec:
    """Specification of a single hardware event.

    Parameters
    ----------
    name:
        Vendor-facing event name, e.g. ``"CPU_CLK_UNHALTED.THREAD"``.
    semantic:
        Canonical semantic key from :mod:`repro.events.semantics`.
    domain:
        The hardware unit this event belongs to.
    kind:
        Fixed or programmable.
    code:
        Numeric event select code (synthetic but stable; used by the PMU
        model when programming registers).
    description:
        Human-readable description.
    counter_mask:
        Indices of programmable counters allowed to count this event.
        ``None`` means "any programmable counter".  Mirrors constraints such
        as Intel's ``L1D_PEND_MISS.PENDING`` being countable only on a
        specific counter.
    requires_msr:
        ``True`` for off-core response style events that consume an auxiliary
        MSR in addition to a counter register.
    scope:
        Collection granularity (per thread, per core or per socket).
    scale:
        Multiplier applied to the semantic ground-truth value to obtain the
        event's count (e.g. an event counting pairs would use ``0.5``).
    """

    name: str
    semantic: str
    domain: EventDomain
    kind: EventKind = EventKind.PROGRAMMABLE
    code: int = 0
    description: str = ""
    counter_mask: Optional[FrozenSet[int]] = None
    requires_msr: bool = False
    scope: CollectionScope = CollectionScope.CORE
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("event name must be non-empty")
        if not sem.is_semantic(self.semantic):
            raise ValueError(f"unknown semantic {self.semantic!r} for event {self.name!r}")
        if self.scale <= 0:
            raise ValueError(f"event {self.name!r} has non-positive scale {self.scale}")
        if self.counter_mask is not None and len(self.counter_mask) == 0:
            raise ValueError(f"event {self.name!r} has an empty counter mask")

    @property
    def is_fixed(self) -> bool:
        """Whether the event can only live on a fixed counter."""
        return self.kind is EventKind.FIXED

    @property
    def is_constrained(self) -> bool:
        """Whether the event restricts which programmable counter may count it."""
        return self.counter_mask is not None or self.requires_msr

    def can_use_counter(self, index: int) -> bool:
        """Return ``True`` if programmable counter *index* may count this event."""
        if self.is_fixed:
            return False
        if self.counter_mask is None:
            return True
        return index in self.counter_mask

    def ground_truth(self, semantic_values: dict) -> float:
        """Compute the event's true count from a map of semantic values."""
        return float(semantic_values[self.semantic]) * self.scale

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class EventGroup:
    """A named group of events measured together (e.g. for a derived metric)."""

    name: str
    events: tuple = field(default_factory=tuple)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("group name must be non-empty")
        if len(self.events) == 0:
            raise ValueError(f"group {self.name!r} must contain at least one event")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
