"""Event model: hardware event specifications and per-microarchitecture catalogs.

The paper's model is driven by *events* (architectural and microarchitectural
quantities counted by the PMU) and *derived events* (algebraic combinations of
events, such as IPC or DRAM bandwidth).  Two catalogs are provided, an
x86-like one (modelled on Intel SkyLake event names) and a ppc64-like one
(modelled on IBM Power9 ``PM_*`` names).  Both map their events onto a shared
set of *semantic* quantities so that the machine model and the invariant
library can be written once and instantiated for either catalog.
"""

from repro.events.event import EventDomain, EventKind, EventSpec
from repro.events.derived import DerivedEvent
from repro.events.catalog import EventCatalog
from repro.events.profiles import derived_metric_events, standard_profiling_events
from repro.events.registry import available_catalogs, catalog_for

__all__ = [
    "EventDomain",
    "EventKind",
    "EventSpec",
    "DerivedEvent",
    "EventCatalog",
    "available_catalogs",
    "catalog_for",
    "standard_profiling_events",
    "derived_metric_events",
]
