"""x86_64 (SkyLake-like) event catalog.

Event names follow Intel's event naming conventions; codes are synthetic but
stable.  The counter file mirrors a modern Intel core: three fixed counters
plus eight programmable counters split between the two SMT threads, i.e. four
usable programmable counters per thread (the "4-10 registers per core" the
paper describes).
"""

from __future__ import annotations

from repro.events import semantics as sem
from repro.events._derived_builders import build_standard_derived
from repro.events.catalog import CounterFile, EventCatalog
from repro.events.event import CollectionScope, EventDomain, EventKind, EventSpec


def _fixed(name: str, semantic: str, code: int, description: str) -> EventSpec:
    return EventSpec(
        name=name,
        semantic=semantic,
        domain=EventDomain.CORE,
        kind=EventKind.FIXED,
        code=code,
        description=description,
        scope=CollectionScope.THREAD,
    )


def _core(name, semantic, code, description, *, domain=EventDomain.CORE, mask=None, msr=False, scope=CollectionScope.CORE, scale=1.0):
    return EventSpec(
        name=name,
        semantic=semantic,
        domain=domain,
        kind=EventKind.PROGRAMMABLE,
        code=code,
        description=description,
        counter_mask=frozenset(mask) if mask is not None else None,
        requires_msr=msr,
        scope=scope,
        scale=scale,
    )


def _socket(name, semantic, code, description, *, domain=EventDomain.MEMORY, scale=1.0):
    return _core(name, semantic, code, description, domain=domain, scope=CollectionScope.SOCKET, scale=scale)


def build_x86_catalog() -> EventCatalog:
    """Construct the x86_64 (SkyLake-like) event catalog."""
    events = [
        # Fixed counters (architectural events).
        _fixed("INST_RETIRED.ANY", sem.INSTRUCTIONS, 0x00, "Instructions retired (fixed counter 0)."),
        _fixed("CPU_CLK_UNHALTED.THREAD", sem.CYCLES, 0x01, "Core clock cycles while the thread is not halted (fixed counter 1)."),
        _fixed("CPU_CLK_UNHALTED.REF_TSC", sem.CYCLES, 0x02, "Reference clock cycles at TSC frequency (fixed counter 2)."),
        # Pipeline.
        _core("UOPS_ISSUED.ANY", sem.UOPS_ISSUED, 0x10, "Micro-ops issued by the rename/allocate stage."),
        _core("UOPS_RETIRED.RETIRE_SLOTS", sem.UOPS_RETIRED, 0x11, "Retirement slots used by retired micro-ops."),
        _core("UOPS_ISSUED.CANCELLED", sem.UOPS_CANCELLED, 0x12, "Issued micro-ops cancelled before retirement."),
        _core("UOPS_DISPATCHED.SLOTS_USED", sem.ISSUE_SLOTS_USED, 0x13, "Issue slots with dispatched micro-ops."),
        _core("IDQ_UOPS_NOT_DELIVERED.CORE", sem.ISSUE_SLOTS_EMPTY, 0x14, "Issue slots where no micro-op was delivered by the front end.", domain=EventDomain.FRONTEND),
        _core("TOPDOWN.SLOTS", sem.ISSUE_SLOTS_TOTAL, 0x15, "Total pipeline issue slots."),
        _core("CPU_CLK_UNHALTED.ACTIVE", sem.ACTIVE_CYCLES, 0x16, "Cycles with at least one micro-op executing."),
        # Branches.
        _core("BR_INST_RETIRED.ALL_BRANCHES", sem.BRANCHES, 0x20, "Retired branch instructions.", domain=EventDomain.BRANCH),
        _core("BR_INST_RETIRED.NEAR_TAKEN", sem.BRANCH_TAKEN, 0x21, "Retired taken branches.", domain=EventDomain.BRANCH),
        _core("BR_INST_RETIRED.NOT_TAKEN", sem.BRANCH_NOT_TAKEN, 0x22, "Retired not-taken branches.", domain=EventDomain.BRANCH),
        _core("BR_MISP_RETIRED.ALL_BRANCHES", sem.BRANCH_MISSES, 0x23, "Retired mispredicted branches.", domain=EventDomain.BRANCH),
        # Memory instructions.
        _core("MEM_INST_RETIRED.ANY", sem.MEM_INST_RETIRED, 0x30, "Retired memory instructions."),
        _core("MEM_INST_RETIRED.ALL_LOADS", sem.LOADS_RETIRED, 0x31, "Retired load instructions."),
        _core("MEM_INST_RETIRED.ALL_STORES", sem.STORES_RETIRED, 0x32, "Retired store instructions."),
        # L1 caches.
        _core("L1D.ACCESS", sem.L1D_ACCESS, 0x40, "L1 data cache accesses.", domain=EventDomain.CACHE),
        _core("MEM_LOAD_RETIRED.L1_HIT", sem.L1D_HIT, 0x41, "L1 data cache hits.", domain=EventDomain.CACHE),
        _core("L1D.REPLACEMENT", sem.L1D_MISS, 0x42, "L1 data cache lines replaced (misses).", domain=EventDomain.CACHE),
        _core("ICACHE_64B.IFTAG_ACCESS", sem.L1I_ACCESS, 0x43, "Instruction cache tag accesses.", domain=EventDomain.FRONTEND),
        _core("ICACHE_64B.IFTAG_MISS", sem.L1I_MISS, 0x44, "Instruction cache tag misses.", domain=EventDomain.FRONTEND),
        _core("L1D_PEND_MISS.PENDING", sem.STALL_L2_PENDING, 0x45, "Cycles with outstanding L1D misses (counter 2 only).", domain=EventDomain.CACHE, mask={2}),
        # L2 cache.
        _core("L2_RQSTS.REFERENCES", sem.L2_ACCESS, 0x50, "L2 cache requests.", domain=EventDomain.CACHE),
        _core("L2_RQSTS.HIT", sem.L2_HIT, 0x51, "L2 cache hits.", domain=EventDomain.CACHE),
        _core("L2_RQSTS.MISS", sem.L2_MISS, 0x52, "L2 cache misses.", domain=EventDomain.CACHE),
        # LLC.
        _core("LONGEST_LAT_CACHE.REFERENCE", sem.LLC_ACCESS, 0x60, "Last-level cache references.", domain=EventDomain.CACHE),
        _core("LONGEST_LAT_CACHE.HIT", sem.LLC_HIT, 0x61, "Last-level cache hits.", domain=EventDomain.CACHE),
        _core("LONGEST_LAT_CACHE.MISS", sem.LLC_MISS, 0x62, "Last-level cache misses.", domain=EventDomain.CACHE),
        # TLB.
        _core("DTLB_LOAD_MISSES.WALK_COMPLETED", sem.DTLB_MISS, 0x70, "Completed page walks caused by DTLB load misses.", domain=EventDomain.TLB),
        _core("ITLB_MISSES.WALK_COMPLETED", sem.ITLB_MISS, 0x71, "Completed page walks caused by ITLB misses.", domain=EventDomain.TLB),
        _core("EPT.WALK_COMPLETED", sem.PAGE_WALKS, 0x72, "Completed page walks (all sources).", domain=EventDomain.TLB),
        # Stalls.
        _core("CYCLE_ACTIVITY.STALLS_TOTAL", sem.STALL_CYCLES_TOTAL, 0x80, "Cycles with no micro-op executing."),
        _core("CYCLE_ACTIVITY.STALLS_FRONTEND", sem.STALL_FRONTEND, 0x81, "Stall cycles attributed to the front end.", domain=EventDomain.FRONTEND),
        _core("CYCLE_ACTIVITY.STALLS_BACKEND", sem.STALL_BACKEND, 0x82, "Stall cycles attributed to the back end."),
        _core("RESOURCE_STALLS.ANY", sem.STALL_CORE, 0x83, "Stall cycles due to core resource limits."),
        _core("CYCLE_ACTIVITY.STALLS_MEM_ANY", sem.STALL_MEM, 0x84, "Stall cycles waiting on memory."),
        _core("CYCLE_ACTIVITY.STALLS_L2_PENDING", sem.STALL_L2_PENDING, 0x85, "Stall cycles with pending L2 misses."),
        _core("OFFCORE_REQUESTS.DRD_BW_CYCLES", sem.STALL_DRAM_BW, 0x86, "Cycles limited by DRAM bandwidth (ORO_DRD_BW_Cycles).", domain=EventDomain.OFFCORE),
        _core("OFFCORE_REQUESTS.DRD_LAT_CYCLES", sem.STALL_DRAM_LAT, 0x87, "Cycles limited by DRAM latency.", domain=EventDomain.OFFCORE),
        # Off-core response events (need an auxiliary MSR).
        _core("OFFCORE_RESPONSE.DEMAND_DATA_RD", sem.OFFCORE_DEMAND_READS, 0x90, "Demand data reads leaving the core.", domain=EventDomain.OFFCORE, msr=True),
        _core("OFFCORE_RESPONSE.WRITEBACKS", sem.OFFCORE_WRITEBACKS, 0x91, "Cache line writebacks leaving the core.", domain=EventDomain.OFFCORE, msr=True),
        # Uncore / memory controller (per socket).
        _socket("UNC_M_CAS_COUNT.RD", sem.DRAM_READS, 0xA0, "DRAM CAS read commands."),
        _socket("UNC_M_CAS_COUNT.WR", sem.DRAM_WRITES, 0xA1, "DRAM CAS write commands."),
        _socket("UNC_M_CAS_COUNT.ALL", sem.DRAM_ACCESSES, 0xA2, "All DRAM CAS commands."),
        _socket("UNC_M_BYTES.ALL", sem.DRAM_BYTES, 0xA3, "Total bytes moved at the memory controller."),
        # IIO / PCIe (per socket).
        _socket("UNC_IIO_DMA_TXN.ALL", sem.DMA_TRANSACTIONS, 0xB0, "DMA transactions handled by the IIO stack.", domain=EventDomain.INTERCONNECT),
        _socket("UNC_IIO_DMA_BYTES.ALL", sem.DMA_BYTES, 0xB1, "DMA bytes handled by the IIO stack.", domain=EventDomain.INTERCONNECT),
        _socket("UNC_IIO_PAYLOAD_BYTES.RD", sem.PCIE_READ_BYTES, 0xB2, "PCIe payload bytes read by devices.", domain=EventDomain.INTERCONNECT),
        _socket("UNC_IIO_PAYLOAD_BYTES.WR", sem.PCIE_WRITE_BYTES, 0xB3, "PCIe payload bytes written by devices.", domain=EventDomain.INTERCONNECT),
        _socket("UNC_IIO_PAYLOAD_BYTES.TOTAL", sem.PCIE_TOTAL_BYTES, 0xB4, "Total PCIe payload bytes.", domain=EventDomain.INTERCONNECT),
        _socket("UNC_IIO_TRANSACTIONS.ALL", sem.PCIE_TRANSACTIONS, 0xB5, "PCIe transactions.", domain=EventDomain.INTERCONNECT),
        # OS-level software events.
        _core("SW.CONTEXT_SWITCHES", sem.CONTEXT_SWITCHES, 0xC0, "OS context switches.", domain=EventDomain.OS),
        _core("SW.INTERRUPTS", sem.INTERRUPTS, 0xC1, "Hardware interrupts serviced.", domain=EventDomain.OS),
    ]

    by_semantic = {}
    for spec in events:
        by_semantic.setdefault(spec.semantic, spec.name)

    derived = build_standard_derived("x86_64-skylake", lambda s: by_semantic[s])
    counter_file = CounterFile(n_fixed=3, n_programmable=8, smt_split=True)
    return EventCatalog(
        name="x86_64-skylake",
        events=events,
        counter_file=counter_file,
        derived=derived,
    )
