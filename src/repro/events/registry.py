"""Catalog registry: look up event catalogs by microarchitecture name."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.events.catalog import EventCatalog
from repro.events.ppc64 import build_ppc64_catalog
from repro.events.x86 import build_x86_catalog

#: Alias -> canonical catalog name.  Every alias of one microarchitecture
#: resolves to the same canonical entry (and therefore the same cached
#: catalog instance).
_CANONICAL: Dict[str, str] = {
    "x86": "x86_64-skylake",
    "x86_64": "x86_64-skylake",
    "x86_64-skylake": "x86_64-skylake",
    "ppc64": "ppc64-power9",
    "power9": "ppc64-power9",
    "ppc64-power9": "ppc64-power9",
}

_BUILDERS: Dict[str, Callable[[], EventCatalog]] = {
    "x86_64-skylake": build_x86_catalog,
    "ppc64-power9": build_ppc64_catalog,
}

_CACHE: Dict[str, EventCatalog] = {}


def available_catalogs() -> Tuple[str, ...]:
    """Canonical names of the available catalogs."""
    return tuple(sorted(_BUILDERS))


def canonical_arch(arch: str) -> str:
    """Resolve an architecture alias to its canonical catalog name."""
    key = arch.strip().lower()
    if key not in _CANONICAL:
        raise KeyError(
            f"unknown microarchitecture {arch!r}; available: {sorted(set(_CANONICAL))}"
        )
    return _CANONICAL[key]


def catalog_for(arch: str) -> EventCatalog:
    """Return the event catalog for *arch*.

    Accepts common aliases (``"x86"``, ``"x86_64"``, ``"ppc64"``,
    ``"power9"``) as well as the canonical catalog names.  Catalogs are
    immutable in practice and cached after first construction; aliases of the
    same microarchitecture share one instance, so repeated session
    construction (the fleet worker pool's hot path) never rebuilds a catalog.
    """
    canonical = canonical_arch(arch)
    if canonical not in _CACHE:
        _CACHE[canonical] = _BUILDERS[canonical]()
    return _CACHE[canonical]


def clear_catalog_cache() -> None:
    """Drop all cached catalogs (useful in tests that mutate builders)."""
    _CACHE.clear()
