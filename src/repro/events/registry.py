"""Catalog registry: look up event catalogs by microarchitecture name."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.events.catalog import EventCatalog
from repro.events.ppc64 import build_ppc64_catalog
from repro.events.x86 import build_x86_catalog

_BUILDERS: Dict[str, Callable[[], EventCatalog]] = {
    "x86": build_x86_catalog,
    "x86_64": build_x86_catalog,
    "x86_64-skylake": build_x86_catalog,
    "ppc64": build_ppc64_catalog,
    "power9": build_ppc64_catalog,
    "ppc64-power9": build_ppc64_catalog,
}

_CACHE: Dict[str, EventCatalog] = {}


def available_catalogs() -> Tuple[str, ...]:
    """Canonical names of the available catalogs."""
    return ("x86_64-skylake", "ppc64-power9")


def catalog_for(arch: str) -> EventCatalog:
    """Return the event catalog for *arch*.

    Accepts common aliases (``"x86"``, ``"x86_64"``, ``"ppc64"``,
    ``"power9"``) as well as the canonical catalog names.  Catalogs are
    immutable in practice and cached after first construction.
    """
    key = arch.strip().lower()
    if key not in _BUILDERS:
        raise KeyError(
            f"unknown microarchitecture {arch!r}; available: {sorted(set(_BUILDERS))}"
        )
    if key not in _CACHE:
        _CACHE[key] = _BUILDERS[key]()
    return _CACHE[key]
