"""Shared construction of the standard derived-metric set.

Both catalogs expose the same twelve derived metrics (the paper measures the
first ten of them, §6.2); only the raw event names differ between
microarchitectures.  A catalog builder supplies a resolver mapping semantic
keys to its own event names and gets back a :class:`DerivedEventSet`.
"""

from __future__ import annotations

from typing import Callable

from repro.events import semantics as sem
from repro.events.derived import (
    DerivedEvent,
    DerivedEventSet,
    normalized_weighted_sum,
    ratio,
)

Resolver = Callable[[str], str]


def build_standard_derived(name: str, resolve: Resolver) -> DerivedEventSet:
    """Build the standard derived metrics using catalog-specific event names.

    Parameters
    ----------
    name:
        Name for the resulting :class:`DerivedEventSet` (usually the catalog
        name).
    resolve:
        Callable mapping a semantic key to the catalog's preferred event name
        for that semantic.
    """
    instructions = resolve(sem.INSTRUCTIONS)
    cycles = resolve(sem.CYCLES)
    branches = resolve(sem.BRANCHES)
    branch_misses = resolve(sem.BRANCH_MISSES)
    l1d_miss = resolve(sem.L1D_MISS)
    l2_access = resolve(sem.L2_ACCESS)
    l2_miss = resolve(sem.L2_MISS)
    llc_access = resolve(sem.LLC_ACCESS)
    llc_miss = resolve(sem.LLC_MISS)
    dma_txn = resolve(sem.DMA_TRANSACTIONS)
    stall_mem = resolve(sem.STALL_MEM)
    stall_frontend = resolve(sem.STALL_FRONTEND)
    stall_backend = resolve(sem.STALL_BACKEND)
    stall_dram_bw = resolve(sem.STALL_DRAM_BW)
    pcie_total = resolve(sem.PCIE_TOTAL_BYTES)
    dma_bytes = resolve(sem.DMA_BYTES)

    metrics = (
        DerivedEvent(
            name="ipc",
            inputs=(instructions, cycles),
            formula=ratio(instructions, cycles),
            description="Instructions retired per core clock cycle.",
        ),
        DerivedEvent(
            name="branch_mispredict_rate",
            inputs=(branch_misses, branches),
            formula=ratio(branch_misses, branches),
            description="Fraction of retired branches that were mispredicted.",
        ),
        DerivedEvent(
            name="l1d_mpki",
            inputs=(l1d_miss, instructions),
            formula=lambda v, _m=l1d_miss, _i=instructions: 1000.0 * v[_m] / max(v[_i], 1e-12),
            description="L1 data-cache misses per thousand instructions.",
        ),
        DerivedEvent(
            name="l2_miss_rate",
            inputs=(l2_miss, l2_access),
            formula=ratio(l2_miss, l2_access),
            description="Fraction of L2 accesses that miss.",
        ),
        DerivedEvent(
            name="llc_miss_rate",
            inputs=(llc_miss, llc_access),
            formula=ratio(llc_miss, llc_access),
            description="Fraction of last-level-cache accesses that miss.",
        ),
        DerivedEvent(
            name="dram_bandwidth",
            inputs=(llc_miss, dma_txn, cycles),
            formula=normalized_weighted_sum(
                {llc_miss: float(sem.CACHE_LINE_BYTES), dma_txn: float(sem.DMA_TRANSACTION_BYTES)},
                cycles,
            ),
            description=(
                "Bytes moved to/from DRAM per cycle: "
                "(LLC misses x cache line size + DMA transactions x transaction size) / clocks."
            ),
        ),
        DerivedEvent(
            name="memory_bound",
            inputs=(stall_mem, cycles),
            formula=ratio(stall_mem, cycles),
            description="Fraction of cycles stalled on the memory subsystem.",
        ),
        DerivedEvent(
            name="frontend_bound_smt",
            inputs=(stall_frontend, cycles),
            formula=ratio(stall_frontend, cycles),
            description="Fraction of cycles stalled in the front end.",
        ),
        DerivedEvent(
            name="backend_bound_smt",
            inputs=(stall_backend, cycles),
            formula=ratio(stall_backend, cycles),
            description="Fraction of cycles stalled in the back end.",
        ),
        DerivedEvent(
            name="dram_bw_bound",
            inputs=(stall_dram_bw, cycles),
            formula=ratio(stall_dram_bw, cycles),
            description="Fraction of cycles stalled on DRAM bandwidth.",
        ),
        DerivedEvent(
            name="pcie_bandwidth",
            inputs=(pcie_total, cycles),
            formula=ratio(pcie_total, cycles),
            description="PCIe payload bytes transferred per cycle.",
        ),
        DerivedEvent(
            name="dma_bandwidth",
            inputs=(dma_bytes, cycles),
            formula=ratio(dma_bytes, cycles),
            description="DMA bytes transferred per cycle.",
        ),
    )
    return DerivedEventSet(name=name, metrics=metrics)
