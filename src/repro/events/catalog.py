"""Event catalogs: the full set of events a microarchitecture exposes.

A catalog bundles the fixed and programmable events of one CPU model, the
number of counter registers available, and the derived-event definitions used
by the evaluation.  It is the single object the PMU model, the scheduler and
the invariant library all consult.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.events.derived import DerivedEventSet
from repro.events.event import EventKind, EventSpec


@dataclass(frozen=True)
class CounterFile:
    """Describes the counter registers of one core.

    Modern Intel cores expose three fixed and eight programmable counters
    (split between SMT threads); Power9 exposes six programmable counters.
    The PMU model uses ``usable_programmable`` as the per-thread budget.
    """

    n_fixed: int
    n_programmable: int
    smt_split: bool = True

    def __post_init__(self) -> None:
        if self.n_fixed < 0:
            raise ValueError("n_fixed must be >= 0")
        if self.n_programmable <= 0:
            raise ValueError("n_programmable must be > 0")

    @property
    def usable_programmable(self) -> int:
        """Programmable counters available to a single hardware thread."""
        if self.smt_split:
            return max(1, self.n_programmable // 2)
        return self.n_programmable


class EventCatalog:
    """A queryable collection of :class:`EventSpec` for one microarchitecture.

    Parameters
    ----------
    name:
        Catalog name, e.g. ``"x86_64-skylake"``.
    events:
        All event specifications, fixed and programmable.
    counter_file:
        Description of the physical counter registers.
    derived:
        Derived-event definitions evaluated on this catalog.
    """

    def __init__(
        self,
        name: str,
        events: Iterable[EventSpec],
        counter_file: CounterFile,
        derived: Optional[DerivedEventSet] = None,
    ) -> None:
        self.name = name
        self.counter_file = counter_file
        self._events: Dict[str, EventSpec] = {}
        self._by_semantic: Dict[str, List[EventSpec]] = {}
        for spec in events:
            if spec.name in self._events:
                raise ValueError(f"duplicate event {spec.name!r} in catalog {name!r}")
            self._events[spec.name] = spec
            self._by_semantic.setdefault(spec.semantic, []).append(spec)
        if not self._events:
            raise ValueError(f"catalog {name!r} has no events")
        self.derived = derived if derived is not None else DerivedEventSet(name=name, metrics=())
        self._validate_derived()

    def _validate_derived(self) -> None:
        for metric in self.derived:
            for event_name in metric.inputs:
                if event_name not in self._events:
                    raise ValueError(
                        f"derived event {metric.name!r} references unknown event {event_name!r}"
                    )

    # -- basic lookups -------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events.values())

    def get(self, name: str) -> EventSpec:
        """Return the spec for event *name* or raise ``KeyError``."""
        try:
            return self._events[name]
        except KeyError:
            raise KeyError(f"unknown event {name!r} in catalog {self.name!r}") from None

    def names(self) -> Tuple[str, ...]:
        """All event names in insertion order."""
        return tuple(self._events)

    @property
    def fixed_events(self) -> Tuple[EventSpec, ...]:
        return tuple(e for e in self._events.values() if e.kind is EventKind.FIXED)

    @property
    def programmable_events(self) -> Tuple[EventSpec, ...]:
        return tuple(e for e in self._events.values() if e.kind is EventKind.PROGRAMMABLE)

    def events_for_semantic(self, semantic: str) -> Tuple[EventSpec, ...]:
        """All events measuring the given semantic quantity."""
        return tuple(self._by_semantic.get(semantic, ()))

    def event_for_semantic(self, semantic: str) -> EventSpec:
        """The preferred (first-registered) event measuring *semantic*."""
        specs = self._by_semantic.get(semantic)
        if not specs:
            raise KeyError(f"catalog {self.name!r} has no event for semantic {semantic!r}")
        return specs[0]

    def semantic_of(self, name: str) -> str:
        """Semantic key measured by event *name*."""
        return self.get(name).semantic

    def semantics(self) -> Tuple[str, ...]:
        """All semantics covered by this catalog, in first-seen order."""
        return tuple(self._by_semantic)

    # -- ground truth --------------------------------------------------

    def ground_truth(self, semantic_values: Mapping[str, float]) -> Dict[str, float]:
        """True event counts for every event, given semantic ground truth."""
        return {
            spec.name: spec.ground_truth(semantic_values)
            for spec in self._events.values()
            if spec.semantic in semantic_values
        }

    def ground_truth_for(
        self, names: Sequence[str], semantic_values: Mapping[str, float]
    ) -> Dict[str, float]:
        """True counts for the listed events only."""
        result = {}
        for name in names:
            spec = self.get(name)
            result[name] = spec.ground_truth(semantic_values)
        return result

    # -- derived metrics -----------------------------------------------

    def compute_derived(self, values: Mapping[str, float]) -> Dict[str, float]:
        """Evaluate every derived metric whose inputs are present in *values*."""
        out: Dict[str, float] = {}
        for metric in self.derived:
            if all(name in values for name in metric.inputs):
                out[metric.name] = metric.compute(values)
        return out

    def events_for_derived(self, metric_names: Sequence[str]) -> Tuple[str, ...]:
        """Raw events needed to compute the listed derived metrics."""
        ordered: List[str] = []
        seen = set()
        for metric_name in metric_names:
            metric = self.derived.get(metric_name)
            for event_name in metric.inputs:
                if event_name not in seen:
                    seen.add(event_name)
                    ordered.append(event_name)
        return tuple(ordered)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventCatalog(name={self.name!r}, events={len(self._events)}, "
            f"fixed={len(self.fixed_events)}, derived={len(self.derived)})"
        )
