"""ppc64 (Power9-like) event catalog.

Event names follow IBM's ``PM_*`` naming style.  Power9 exposes six counters
per thread; two of them (PMC5/PMC6) are dedicated to instructions and cycles,
so the model uses two fixed plus four programmable counters that are not
split between SMT threads.
"""

from __future__ import annotations

from repro.events import semantics as sem
from repro.events._derived_builders import build_standard_derived
from repro.events.catalog import CounterFile, EventCatalog
from repro.events.event import CollectionScope, EventDomain, EventKind, EventSpec


def _fixed(name: str, semantic: str, code: int, description: str) -> EventSpec:
    return EventSpec(
        name=name,
        semantic=semantic,
        domain=EventDomain.CORE,
        kind=EventKind.FIXED,
        code=code,
        description=description,
        scope=CollectionScope.THREAD,
    )


def _prog(name, semantic, code, description, *, domain=EventDomain.CORE, mask=None, msr=False, scope=CollectionScope.CORE, scale=1.0):
    return EventSpec(
        name=name,
        semantic=semantic,
        domain=domain,
        kind=EventKind.PROGRAMMABLE,
        code=code,
        description=description,
        counter_mask=frozenset(mask) if mask is not None else None,
        requires_msr=msr,
        scope=scope,
        scale=scale,
    )


def _socket(name, semantic, code, description, *, domain=EventDomain.MEMORY, scale=1.0):
    return _prog(name, semantic, code, description, domain=domain, scope=CollectionScope.SOCKET, scale=scale)


def build_ppc64_catalog() -> EventCatalog:
    """Construct the ppc64 (Power9-like) event catalog."""
    events = [
        # Dedicated counters (PMC5 / PMC6 on Power9).
        _fixed("PM_RUN_INST_CMPL", sem.INSTRUCTIONS, 0x500, "Run instructions completed (dedicated PMC5)."),
        _fixed("PM_RUN_CYC", sem.CYCLES, 0x600, "Run cycles (dedicated PMC6)."),
        # Pipeline.
        _prog("PM_CYC", sem.CYCLES, 0x1E, "Processor cycles."),
        _prog("PM_INST_DISP", sem.UOPS_ISSUED, 0x102, "Internal operations dispatched."),
        _prog("PM_INST_CMPL_IOPS", sem.UOPS_RETIRED, 0x103, "Internal operations completed."),
        _prog("PM_DISP_CANCEL", sem.UOPS_CANCELLED, 0x104, "Dispatched operations cancelled."),
        _prog("PM_SLOT_USED", sem.ISSUE_SLOTS_USED, 0x105, "Dispatch slots used."),
        _prog("PM_SLOT_EMPTY", sem.ISSUE_SLOTS_EMPTY, 0x106, "Dispatch slots left empty by the front end.", domain=EventDomain.FRONTEND),
        _prog("PM_SLOT_TOTAL", sem.ISSUE_SLOTS_TOTAL, 0x107, "Total dispatch slots."),
        _prog("PM_RUN_CYC_ACTIVE", sem.ACTIVE_CYCLES, 0x108, "Cycles with at least one operation executing."),
        # Branches.
        _prog("PM_BR_CMPL", sem.BRANCHES, 0x200, "Branches completed.", domain=EventDomain.BRANCH),
        _prog("PM_BR_TAKEN_CMPL", sem.BRANCH_TAKEN, 0x201, "Taken branches completed.", domain=EventDomain.BRANCH),
        _prog("PM_BR_NOT_TAKEN_CMPL", sem.BRANCH_NOT_TAKEN, 0x202, "Not-taken branches completed.", domain=EventDomain.BRANCH),
        _prog("PM_BR_MPRED_CMPL", sem.BRANCH_MISSES, 0x203, "Mispredicted branches completed.", domain=EventDomain.BRANCH),
        # Memory instructions.
        _prog("PM_LSU_FIN", sem.MEM_INST_RETIRED, 0x300, "Load/store unit operations finished."),
        _prog("PM_LD_CMPL", sem.LOADS_RETIRED, 0x301, "Loads completed."),
        _prog("PM_ST_CMPL", sem.STORES_RETIRED, 0x302, "Stores completed."),
        # L1 caches.
        _prog("PM_LD_REF_L1", sem.L1D_ACCESS, 0x400, "L1 data cache references.", domain=EventDomain.CACHE),
        _prog("PM_LD_HIT_L1", sem.L1D_HIT, 0x401, "L1 data cache hits.", domain=EventDomain.CACHE),
        _prog("PM_LD_MISS_L1", sem.L1D_MISS, 0x402, "L1 data cache misses.", domain=EventDomain.CACHE),
        _prog("PM_INST_FROM_L1", sem.L1I_ACCESS, 0x403, "Instruction fetches from the L1 instruction cache.", domain=EventDomain.FRONTEND),
        _prog("PM_L1_ICACHE_MISS", sem.L1I_MISS, 0x404, "L1 instruction cache misses.", domain=EventDomain.FRONTEND),
        _prog("PM_CMPLU_STALL_DMISS_L21_L31", sem.STALL_L2_PENDING, 0x405, "Stall cycles with pending L2/L3 demand misses (counter 3 only).", domain=EventDomain.CACHE, mask={3}),
        # L2 cache.
        _prog("PM_L2_RQSTS", sem.L2_ACCESS, 0x410, "L2 cache requests.", domain=EventDomain.CACHE),
        _prog("PM_L2_HIT", sem.L2_HIT, 0x411, "L2 cache hits.", domain=EventDomain.CACHE),
        _prog("PM_L2_MISS", sem.L2_MISS, 0x412, "L2 cache misses.", domain=EventDomain.CACHE),
        # L3 (last level).
        _prog("PM_L3_REF", sem.LLC_ACCESS, 0x420, "L3 cache references.", domain=EventDomain.CACHE),
        _prog("PM_L3_HIT", sem.LLC_HIT, 0x421, "L3 cache hits.", domain=EventDomain.CACHE),
        _prog("PM_L3_MISS", sem.LLC_MISS, 0x422, "L3 cache misses.", domain=EventDomain.CACHE),
        # TLB.
        _prog("PM_DTLB_MISS", sem.DTLB_MISS, 0x430, "Data TLB misses.", domain=EventDomain.TLB),
        _prog("PM_ITLB_MISS", sem.ITLB_MISS, 0x431, "Instruction TLB misses.", domain=EventDomain.TLB),
        _prog("PM_TABLEWALK_CMPL", sem.PAGE_WALKS, 0x432, "Completed table walks.", domain=EventDomain.TLB),
        # Stalls.
        _prog("PM_CMPLU_STALL", sem.STALL_CYCLES_TOTAL, 0x440, "Completion stall cycles."),
        _prog("PM_ICT_NOSLOT_CYC", sem.STALL_FRONTEND, 0x441, "Cycles with no instructions available to dispatch.", domain=EventDomain.FRONTEND),
        _prog("PM_CMPLU_STALL_BACKEND", sem.STALL_BACKEND, 0x442, "Back-end completion stall cycles."),
        _prog("PM_CMPLU_STALL_EXEC_UNIT", sem.STALL_CORE, 0x443, "Stall cycles due to execution-unit limits."),
        _prog("PM_CMPLU_STALL_MEM", sem.STALL_MEM, 0x444, "Stall cycles waiting on the memory subsystem."),
        _prog("PM_CMPLU_STALL_DMISS_L3MISS", sem.STALL_L2_PENDING, 0x445, "Stall cycles with demand misses past the L2."),
        _prog("PM_CMPLU_STALL_DMISS_REMOTE_BW", sem.STALL_DRAM_BW, 0x446, "Stall cycles limited by memory bandwidth.", domain=EventDomain.OFFCORE),
        _prog("PM_CMPLU_STALL_DMISS_LMEM_LAT", sem.STALL_DRAM_LAT, 0x447, "Stall cycles limited by memory latency.", domain=EventDomain.OFFCORE),
        # Off-chip traffic (need an auxiliary MMCR-style register).
        _prog("PM_DATA_FROM_MEMORY", sem.OFFCORE_DEMAND_READS, 0x450, "Demand data sourced from memory.", domain=EventDomain.OFFCORE, msr=True),
        _prog("PM_L3_CO_MEM", sem.OFFCORE_WRITEBACKS, 0x451, "L3 castouts written to memory.", domain=EventDomain.OFFCORE, msr=True),
        # Memory controller / nest events (per socket).
        _socket("PM_MEM_READ", sem.DRAM_READS, 0x460, "Memory controller read commands."),
        _socket("PM_MEM_WRITE", sem.DRAM_WRITES, 0x461, "Memory controller write commands."),
        _socket("PM_MEM_ACCESS", sem.DRAM_ACCESSES, 0x462, "All memory controller commands."),
        _socket("PM_MEM_BYTES", sem.DRAM_BYTES, 0x463, "Bytes moved at the memory controller."),
        # Nest / PCIe host bridge events (per socket).
        _socket("PM_PHB_DMA_TXN", sem.DMA_TRANSACTIONS, 0x470, "DMA transactions through the PCIe host bridge.", domain=EventDomain.INTERCONNECT),
        _socket("PM_PHB_DMA_BYTES", sem.DMA_BYTES, 0x471, "DMA bytes through the PCIe host bridge.", domain=EventDomain.INTERCONNECT),
        _socket("PM_PHB_PAYLOAD_READ", sem.PCIE_READ_BYTES, 0x472, "PCIe payload bytes read by devices.", domain=EventDomain.INTERCONNECT),
        _socket("PM_PHB_PAYLOAD_WRITE", sem.PCIE_WRITE_BYTES, 0x473, "PCIe payload bytes written by devices.", domain=EventDomain.INTERCONNECT),
        _socket("PM_PHB_PAYLOAD_TOTAL", sem.PCIE_TOTAL_BYTES, 0x474, "Total PCIe payload bytes.", domain=EventDomain.INTERCONNECT),
        _socket("PM_PHB_TRANSACTIONS", sem.PCIE_TRANSACTIONS, 0x475, "PCIe transactions.", domain=EventDomain.INTERCONNECT),
        # OS-level software events.
        _prog("SW_CONTEXT_SWITCHES", sem.CONTEXT_SWITCHES, 0x480, "OS context switches.", domain=EventDomain.OS),
        _prog("SW_INTERRUPTS", sem.INTERRUPTS, 0x481, "Hardware interrupts serviced.", domain=EventDomain.OS),
    ]

    by_semantic = {}
    for spec in events:
        by_semantic.setdefault(spec.semantic, spec.name)

    derived = build_standard_derived("ppc64-power9", lambda s: by_semantic[s])
    counter_file = CounterFile(n_fixed=2, n_programmable=4, smt_split=False)
    return EventCatalog(
        name="ppc64-power9",
        events=events,
        counter_file=counter_file,
        derived=derived,
    )
