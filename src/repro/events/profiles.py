"""Standard profiling event sets.

The paper's evaluation collects the counters behind its first ten derived
metrics — roughly thirty unique events per microarchitecture (§2 quotes 29
unique counters for a three-metric example, §6.3 uses 32).  This module
defines the equivalent standard set for the reproduction: the inputs of the
derived metrics plus the events that complete the invariant relations those
inputs participate in (hit counts, stall components, and so on).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.events import semantics as sem
from repro.events.catalog import EventCatalog

#: Semantics included in the standard profiling set, in priority order.
_PROFILING_SEMANTICS: Tuple[str, ...] = (
    # Derived-metric inputs.
    sem.INSTRUCTIONS,
    sem.CYCLES,
    sem.BRANCHES,
    sem.BRANCH_MISSES,
    sem.L1D_MISS,
    sem.L2_ACCESS,
    sem.L2_MISS,
    sem.LLC_ACCESS,
    sem.LLC_MISS,
    sem.DMA_TRANSACTIONS,
    sem.STALL_MEM,
    sem.STALL_FRONTEND,
    sem.STALL_BACKEND,
    sem.STALL_DRAM_BW,
    sem.PCIE_TOTAL_BYTES,
    sem.DMA_BYTES,
    # Relation-completing events.
    sem.ACTIVE_CYCLES,
    sem.STALL_CYCLES_TOTAL,
    sem.STALL_CORE,
    sem.STALL_DRAM_LAT,
    sem.STALL_L2_PENDING,
    sem.BRANCH_TAKEN,
    sem.BRANCH_NOT_TAKEN,
    sem.MEM_INST_RETIRED,
    sem.LOADS_RETIRED,
    sem.STORES_RETIRED,
    sem.L1D_ACCESS,
    sem.L1D_HIT,
    sem.L1I_ACCESS,
    sem.L1I_MISS,
    sem.L2_HIT,
    sem.LLC_HIT,
    sem.UOPS_ISSUED,
    sem.UOPS_RETIRED,
    sem.DRAM_READS,
    sem.DRAM_WRITES,
    sem.DRAM_ACCESSES,
    sem.OFFCORE_DEMAND_READS,
    sem.OFFCORE_WRITEBACKS,
    sem.DTLB_MISS,
    sem.ITLB_MISS,
    sem.PAGE_WALKS,
    sem.PCIE_READ_BYTES,
    sem.PCIE_WRITE_BYTES,
)


def standard_profiling_events(
    catalog: EventCatalog, n_events: Optional[int] = None
) -> Tuple[str, ...]:
    """The standard profiling event set for *catalog*.

    Parameters
    ----------
    catalog:
        Event catalog to resolve semantics into event names.
    n_events:
        Optional cap on the number of events (taken in priority order);
        ``None`` returns the full set (~45 events).  Fixed-counter events are
        included and do not consume multiplexing capacity.
    """
    names: List[str] = []
    for semantic in _PROFILING_SEMANTICS:
        try:
            spec = catalog.event_for_semantic(semantic)
        except KeyError:
            continue
        if spec.name not in names:
            names.append(spec.name)
        if n_events is not None and len(names) >= n_events:
            break
    return tuple(names)


def derived_metric_events(catalog: EventCatalog, n_metrics: int = 10) -> Tuple[str, ...]:
    """Events needed for the catalog's first *n_metrics* derived metrics."""
    metric_names = tuple(metric.name for metric in catalog.derived)[:n_metrics]
    return catalog.events_for_derived(metric_names)
