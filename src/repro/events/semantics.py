"""Canonical semantic quantities shared by all event catalogs.

Every :class:`~repro.events.event.EventSpec` maps to exactly one semantic
quantity.  The machine model (:mod:`repro.uarch`) produces ground-truth values
for semantics, and the invariant library (:mod:`repro.invariants`) states
algebraic relations over semantics.  Catalogs translate between
vendor-specific event names and these canonical keys.
"""

from __future__ import annotations

# Pipeline / retirement
CYCLES = "cycles"
ACTIVE_CYCLES = "active_cycles"
INSTRUCTIONS = "instructions"
UOPS_ISSUED = "uops_issued"
UOPS_RETIRED = "uops_retired"
UOPS_CANCELLED = "uops_cancelled"
ISSUE_SLOTS_TOTAL = "issue_slots_total"
ISSUE_SLOTS_USED = "issue_slots_used"
ISSUE_SLOTS_EMPTY = "issue_slots_empty"

# Branches
BRANCHES = "branches"
BRANCH_TAKEN = "branch_taken"
BRANCH_NOT_TAKEN = "branch_not_taken"
BRANCH_MISSES = "branch_misses"

# Memory instructions
MEM_INST_RETIRED = "mem_inst_retired"
LOADS_RETIRED = "loads_retired"
STORES_RETIRED = "stores_retired"

# Cache hierarchy
L1D_ACCESS = "l1d_access"
L1D_HIT = "l1d_hit"
L1D_MISS = "l1d_miss"
L1I_ACCESS = "l1i_access"
L1I_MISS = "l1i_miss"
L2_ACCESS = "l2_access"
L2_HIT = "l2_hit"
L2_MISS = "l2_miss"
LLC_ACCESS = "llc_access"
LLC_HIT = "llc_hit"
LLC_MISS = "llc_miss"

# TLB
DTLB_MISS = "dtlb_miss"
ITLB_MISS = "itlb_miss"
PAGE_WALKS = "page_walks"

# DRAM and IO
DRAM_READS = "dram_reads"
DRAM_WRITES = "dram_writes"
DRAM_ACCESSES = "dram_accesses"
DRAM_BYTES = "dram_bytes"
DMA_TRANSACTIONS = "dma_transactions"
DMA_BYTES = "dma_bytes"
OFFCORE_DEMAND_READS = "offcore_demand_reads"
OFFCORE_WRITEBACKS = "offcore_writebacks"

# Stalls
STALL_CYCLES_TOTAL = "stall_cycles_total"
STALL_FRONTEND = "stall_frontend"
STALL_BACKEND = "stall_backend"
STALL_CORE = "stall_core"
STALL_MEM = "stall_mem"
STALL_DRAM_BW = "stall_dram_bw"
STALL_DRAM_LAT = "stall_dram_lat"
STALL_L2_PENDING = "stall_l2_pending"

# PCIe / interconnect
PCIE_READ_BYTES = "pcie_read_bytes"
PCIE_WRITE_BYTES = "pcie_write_bytes"
PCIE_TOTAL_BYTES = "pcie_total_bytes"
PCIE_TRANSACTIONS = "pcie_transactions"

# OS-level
CONTEXT_SWITCHES = "context_switches"
INTERRUPTS = "interrupts"

#: All semantic keys, in a stable order.  The machine model produces a value
#: for every key in this tuple at every tick.
ALL_SEMANTICS = (
    CYCLES,
    ACTIVE_CYCLES,
    INSTRUCTIONS,
    UOPS_ISSUED,
    UOPS_RETIRED,
    UOPS_CANCELLED,
    ISSUE_SLOTS_TOTAL,
    ISSUE_SLOTS_USED,
    ISSUE_SLOTS_EMPTY,
    BRANCHES,
    BRANCH_TAKEN,
    BRANCH_NOT_TAKEN,
    BRANCH_MISSES,
    MEM_INST_RETIRED,
    LOADS_RETIRED,
    STORES_RETIRED,
    L1D_ACCESS,
    L1D_HIT,
    L1D_MISS,
    L1I_ACCESS,
    L1I_MISS,
    L2_ACCESS,
    L2_HIT,
    L2_MISS,
    LLC_ACCESS,
    LLC_HIT,
    LLC_MISS,
    DTLB_MISS,
    ITLB_MISS,
    PAGE_WALKS,
    DRAM_READS,
    DRAM_WRITES,
    DRAM_ACCESSES,
    DRAM_BYTES,
    DMA_TRANSACTIONS,
    DMA_BYTES,
    OFFCORE_DEMAND_READS,
    OFFCORE_WRITEBACKS,
    STALL_CYCLES_TOTAL,
    STALL_FRONTEND,
    STALL_BACKEND,
    STALL_CORE,
    STALL_MEM,
    STALL_DRAM_BW,
    STALL_DRAM_LAT,
    STALL_L2_PENDING,
    PCIE_READ_BYTES,
    PCIE_WRITE_BYTES,
    PCIE_TOTAL_BYTES,
    PCIE_TRANSACTIONS,
    CONTEXT_SWITCHES,
    INTERRUPTS,
)

#: Cache line size in bytes used by the DRAM-bandwidth invariant (footnote 1
#: of the paper).
CACHE_LINE_BYTES = 64

#: Size of a single DMA transaction in bytes assumed by the machine model.
DMA_TRANSACTION_BYTES = 256

#: Pipeline issue width assumed by the issue-slot invariants.
PIPELINE_WIDTH = 4


def is_semantic(name: str) -> bool:
    """Return ``True`` when *name* is a known semantic key."""
    return name in _SEMANTIC_SET


_SEMANTIC_SET = frozenset(ALL_SEMANTICS)
