"""Derived events: algebraic combinations of raw hardware events.

The paper's evaluation measures ten *derived events* per microarchitecture
(§6.2); each derived event aggregates a group of raw HPC measurements with a
mathematical expression (e.g. ``Backend_Bound_SMT`` combines 16 counters).
Here a :class:`DerivedEvent` carries the list of raw input events and a
callable over their values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class DerivedEvent:
    """A metric computed from several raw events.

    Parameters
    ----------
    name:
        Metric name, e.g. ``"dram_bandwidth"``.
    inputs:
        Names of the raw events consumed by the metric.
    formula:
        Callable mapping ``{event_name: value}`` to the metric value.  It is
        only ever called with exactly the events listed in ``inputs``.
    description:
        Human-readable description of the metric.
    """

    name: str
    inputs: Tuple[str, ...]
    formula: Callable[[Mapping[str, float]], float]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("derived event name must be non-empty")
        if len(self.inputs) == 0:
            raise ValueError(f"derived event {self.name!r} needs at least one input")

    def compute(self, values: Mapping[str, float]) -> float:
        """Evaluate the metric on a mapping of raw event values.

        Missing inputs raise ``KeyError`` so that callers notice incomplete
        measurements instead of silently computing garbage.
        """
        missing = [name for name in self.inputs if name not in values]
        if missing:
            raise KeyError(f"derived event {self.name!r} missing inputs: {missing}")
        subset = {name: float(values[name]) for name in self.inputs}
        return float(self.formula(subset))

    def __len__(self) -> int:
        return len(self.inputs)


def ratio(numerator: str, denominator: str, *, floor: float = 1e-12) -> Callable[[Mapping[str, float]], float]:
    """Build a safe ratio formula ``numerator / max(denominator, floor)``."""

    def _formula(values: Mapping[str, float]) -> float:
        return values[numerator] / max(values[denominator], floor)

    return _formula


def weighted_sum(weights: Dict[str, float]) -> Callable[[Mapping[str, float]], float]:
    """Build a formula computing ``sum(weights[e] * values[e])``."""
    if not weights:
        raise ValueError("weighted_sum requires at least one term")

    def _formula(values: Mapping[str, float]) -> float:
        return sum(w * values[name] for name, w in weights.items())

    return _formula


def normalized_weighted_sum(
    weights: Dict[str, float], denominator: str, *, floor: float = 1e-12
) -> Callable[[Mapping[str, float]], float]:
    """Build a formula for ``sum(w_i * e_i) / max(denominator, floor)``."""
    if not weights:
        raise ValueError("normalized_weighted_sum requires at least one term")

    def _formula(values: Mapping[str, float]) -> float:
        total = sum(w * values[name] for name, w in weights.items())
        return total / max(values[denominator], floor)

    return _formula


@dataclass(frozen=True)
class DerivedEventSet:
    """An ordered collection of derived events for one microarchitecture."""

    name: str
    metrics: Tuple[DerivedEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen = set()
        for metric in self.metrics:
            if metric.name in seen:
                raise ValueError(f"duplicate derived event {metric.name!r}")
            seen.add(metric.name)

    def __iter__(self):
        return iter(self.metrics)

    def __len__(self) -> int:
        return len(self.metrics)

    def get(self, name: str) -> DerivedEvent:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        raise KeyError(f"unknown derived event {name!r}")

    def required_events(self) -> Tuple[str, ...]:
        """Names of all raw events needed to compute every metric, de-duplicated."""
        ordered = []
        seen = set()
        for metric in self.metrics:
            for event_name in metric.inputs:
                if event_name not in seen:
                    seen.add(event_name)
                    ordered.append(event_name)
        return tuple(ordered)

    def first(self, count: int) -> "DerivedEventSet":
        """Return a new set containing only the first *count* metrics."""
        if count <= 0:
            raise ValueError("count must be positive")
        return DerivedEventSet(name=self.name, metrics=self.metrics[:count])
