"""Counter read-latency model (Fig. 3).

Fig. 3 compares the average host-CPU cycles to read one counter value under
five mechanisms: the Linux ``read()`` system call, userspace ``rdpmc``,
BayesPerf's CPU implementation (TensorFlow Probability in the prototype),
the BayesPerf accelerator, and CounterMiner.  The model composes each path
from its mechanical pieces (syscall cost, inference cost, accelerator
masking, trace post-processing) so that the *relationships* reported by the
paper — CPU inference ~9x a native read, the accelerator within ~2% of
native, CounterMiner the most expensive — emerge from the structure rather
than being hard-coded output values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.accelerator.device import AcceleratorModel
from repro.fg.mcmc import ChainTrace


class ReadPath(enum.Enum):
    """The five counter-read mechanisms compared in Fig. 3."""

    LINUX = "linux"
    LINUX_RDPMC = "linux+rdpmc"
    BAYESPERF_CPU = "bayesperf-cpu"
    BAYESPERF_ACCELERATOR = "bayesperf-accelerator"
    COUNTERMINER = "counterminer"


@dataclass
class ReadLatencyModel:
    """Average per-read host-CPU cycle cost of each read mechanism.

    Parameters
    ----------
    syscall_cycles:
        Cost of the ``read()`` system call path into the perf subsystem
        (user/kernel transition, perf bookkeeping, copy-out).
    counter_access_cycles:
        Cost of actually reading the hardware counter (rdmsr/rdpmc).
    rdpmc_user_cycles:
        Extra userspace cost of the ``rdpmc`` fast path (scaling with the
        mmapped metadata page) — no kernel entry.
    cpu_inference_cycles_per_factor:
        Host cycles per factor for the software (TFP) implementation of one
        EP pass; multiplied by the model size this dominates the CPU path.
    counterminer_window_cycles:
        Per-read cost of CounterMiner's outlier-test over its sample window.
    model_factors, model_sites, model_variables:
        Size of the per-slice BayesPerf model being evaluated on each read.
    host_clock_ghz:
        Host clock; used to convert accelerator nanoseconds to host cycles.
    accelerator:
        Accelerator model used for the accelerated path.
    """

    syscall_cycles: float = 1600.0
    counter_access_cycles: float = 250.0
    rdpmc_user_cycles: float = 950.0
    cpu_inference_cycles_per_factor: float = 85.0
    counterminer_window_cycles: float = 27000.0
    model_factors: int = 44
    model_sites: int = 4
    model_variables: int = 12
    host_clock_ghz: float = 2.1
    accelerator: Optional[AcceleratorModel] = None

    def __post_init__(self) -> None:
        if self.accelerator is None:
            self.accelerator = AcceleratorModel()
        for name in (
            "syscall_cycles",
            "counter_access_cycles",
            "rdpmc_user_cycles",
            "cpu_inference_cycles_per_factor",
            "counterminer_window_cycles",
            "host_clock_ghz",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @classmethod
    def from_chain_trace(
        cls, trace: ChainTrace, *, accelerator: Optional[AcceleratorModel] = None, **kwargs
    ) -> "ReadLatencyModel":
        """Ground the per-read model's workload shape in a measured trace.

        The historical defaults (``model_factors=44`` etc.) describe the
        paper's nominal per-slice model; this constructor replaces them
        with what the recorded workload actually executed — the mean site
        visits per slice (the updates a CPU implementation would replay on
        every read), the mean factors folded per visit and the mean site
        width — so the Fig. 3 comparison and the CPU-vs-accelerator gap
        follow the measured schedule.
        """
        if not trace.visits:
            raise ValueError("cannot derive a read-latency model from an empty trace")
        visits = trace.visits
        visits_per_slice = len(visits) / max(trace.n_slices, 1)
        mean_factors = sum(v.n_factors for v in visits) / len(visits)
        mean_width = sum(v.width for v in visits) / len(visits)
        kwargs.setdefault("model_sites", max(1, round(visits_per_slice)))
        kwargs.setdefault("model_factors", max(1, round(mean_factors)))
        kwargs.setdefault("model_variables", max(1, round(mean_width)))
        return cls(accelerator=accelerator, **kwargs)

    # -- individual paths ---------------------------------------------------

    def linux_read_cycles(self) -> float:
        """perf_event read() system call."""
        return self.syscall_cycles + self.counter_access_cycles

    def rdpmc_read_cycles(self) -> float:
        """Userspace rdpmc read (no kernel entry)."""
        return self.rdpmc_user_cycles + self.counter_access_cycles

    def cpu_inference_cycles(self) -> float:
        """Host cycles to run one software EP inference pass."""
        per_iteration = self.cpu_inference_cycles_per_factor * self.model_factors
        return per_iteration * self.model_sites

    def bayesperf_cpu_read_cycles(self) -> float:
        """Read through the shim with inference executed on the host CPU."""
        return self.linux_read_cycles() + self.cpu_inference_cycles()

    def bayesperf_accelerator_read_cycles(self) -> float:
        """Read through the shim with inference offloaded to the accelerator.

        Inference runs ahead of the read and its latency is masked; the read
        only pays the host-side transport/polling overhead.
        """
        assert self.accelerator is not None
        return self.linux_read_cycles() + self.accelerator.host_read_overhead_cycles()

    def counterminer_read_cycles(self) -> float:
        """CounterMiner's per-read outlier analysis over its sample window."""
        return self.linux_read_cycles() + self.counterminer_window_cycles

    # -- summaries -----------------------------------------------------------

    def read_cycles(self, path: ReadPath) -> float:
        """Average read latency in host cycles for one mechanism."""
        dispatch = {
            ReadPath.LINUX: self.linux_read_cycles,
            ReadPath.LINUX_RDPMC: self.rdpmc_read_cycles,
            ReadPath.BAYESPERF_CPU: self.bayesperf_cpu_read_cycles,
            ReadPath.BAYESPERF_ACCELERATOR: self.bayesperf_accelerator_read_cycles,
            ReadPath.COUNTERMINER: self.counterminer_read_cycles,
        }
        return dispatch[path]()

    def all_paths(self) -> Dict[str, float]:
        """Latency of every read path, keyed by its Fig. 3 label."""
        return {path.value: self.read_cycles(path) for path in ReadPath}

    def overhead_vs_linux(self, path: ReadPath) -> float:
        """Relative overhead of a path compared to the native Linux read."""
        return self.read_cycles(path) / self.linux_read_cycles() - 1.0
