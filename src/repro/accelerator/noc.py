"""Butterfly network-on-chip model.

The accelerator's EP engines and MCMC samplers communicate over a butterfly
NoC generated with CONNECT (§5).  The model captures what matters for the
latency estimates: the number of ports, the hop count between any two ports,
and the per-hop/per-flit cycle costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class NoCLatency:
    """Latency breakdown of one NoC transfer."""

    hops: int
    cycles: float


class ButterflyNoC:
    """A k-ary butterfly NoC with a power-of-two number of ports.

    Parameters
    ----------
    n_ports:
        Number of endpoints (the paper uses 16: 4 EP engines + 12 samplers).
    cycles_per_hop:
        Router traversal latency in cycles.
    cycles_per_flit:
        Serialisation cost per payload flit.
    flit_bytes:
        Payload bytes per flit.
    """

    def __init__(
        self,
        n_ports: int = 16,
        *,
        cycles_per_hop: float = 2.0,
        cycles_per_flit: float = 1.0,
        flit_bytes: int = 16,
    ) -> None:
        if n_ports < 2 or (n_ports & (n_ports - 1)) != 0:
            raise ValueError("n_ports must be a power of two >= 2")
        if cycles_per_hop <= 0 or cycles_per_flit <= 0 or flit_bytes <= 0:
            raise ValueError("latency parameters must be positive")
        self.n_ports = n_ports
        self.cycles_per_hop = cycles_per_hop
        self.cycles_per_flit = cycles_per_flit
        self.flit_bytes = flit_bytes

    @property
    def stages(self) -> int:
        """Number of switching stages between any pair of ports."""
        return int(math.log2(self.n_ports))

    def hops(self, source: int, destination: int) -> int:
        """Router hops between two ports (uniform in a butterfly)."""
        self._validate_port(source)
        self._validate_port(destination)
        if source == destination:
            return 0
        return self.stages

    def transfer(self, source: int, destination: int, payload_bytes: int) -> NoCLatency:
        """Latency of moving *payload_bytes* from one port to another."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        hop_count = self.hops(source, destination)
        flits = max(1, math.ceil(payload_bytes / self.flit_bytes))
        cycles = hop_count * self.cycles_per_hop + flits * self.cycles_per_flit
        return NoCLatency(hops=hop_count, cycles=float(cycles))

    def site_update_payload_bytes(self, n_variables: int) -> int:
        """Payload of one site update's state: a ``w x w`` natural-parameter
        block plus its shift vector, in 8-byte words."""
        if n_variables <= 0:
            raise ValueError("n_variables must be positive")
        return 8 * n_variables * (n_variables + 1)

    def site_update_cycles(self, n_variables: int) -> float:
        """NoC cycles for one site update's round trip.

        The engine ships the site state to its samplers and the updated
        global block back to the controller — the two transfers every site
        visit pays, whether priced analytically or from a measured trace.
        """
        payload = self.site_update_payload_bytes(n_variables)
        return (
            self.transfer(0, self.n_ports - 1, payload).cycles
            + self.transfer(self.n_ports - 1, 0, payload).cycles
        )

    def broadcast_cycles(self, source: int, payload_bytes: int) -> float:
        """Cycles to send the same payload from one port to all others."""
        total = 0.0
        for destination in range(self.n_ports):
            if destination != source:
                total += self.transfer(source, destination, payload_bytes).cycles
        return total

    def bisection_links(self) -> int:
        """Number of links crossing the bisection (used by the area model)."""
        return self.n_ports // 2 * self.stages

    def _validate_port(self, port: int) -> None:
        if not 0 <= port < self.n_ports:
            raise ValueError(f"port {port} out of range [0, {self.n_ports})")
