"""The accelerator device model: EP engines + samplers + NoC + host transport.

Two estimation modes coexist:

* the historical **analytical** mode (:meth:`AcceleratorModel.inference_latency`)
  prices a hypothetical uniform workload from assumed site shapes and sample
  budgets;
* the **trace-driven co-simulation** (:meth:`AcceleratorModel.cosimulate`)
  replays a recorded :class:`~repro.fg.mcmc.ChainTrace` — the per-site chain
  schedule the software sampler actually executed — through the same
  component models, list-scheduling every measured site visit onto the EP
  engines.  Cycle counts, occupancy and downstream energy figures then
  derive from measured site widths, factor counts, chain lengths and
  acceptance rates rather than assumptions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.accelerator.ep_engine import EPEngineUnit, MCMCSamplerIP
from repro.accelerator.noc import ButterflyNoC
from repro.fg.mcmc import ChainTrace

#: Host transport protocols supported by the prototype (§5 / §6.1).
TRANSPORTS = ("capi", "pcie")


@dataclass(frozen=True)
class AcceleratorConfig:
    """Static configuration of the BayesPerf accelerator.

    The defaults follow the prototype: a 250 MHz Virtex UltraScale+ design
    with 4 EP engines and 12 MCMC samplers on a 16-port butterfly NoC,
    attached over CAPI 2.0 on Power9 or PCIe3 x16 + XDMA on x86.
    """

    transport: str = "capi"
    clock_mhz: float = 250.0
    n_ep_engines: int = 4
    n_samplers: int = 12
    noc_ports: int = 16
    dram_channels: int = 4
    dram_channel_gb: int = 16

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        if self.n_ep_engines <= 0 or self.n_samplers <= 0:
            raise ValueError("engine and sampler counts must be positive")
        if self.n_ep_engines + self.n_samplers > self.noc_ports:
            raise ValueError("EP engines plus samplers cannot exceed the NoC port count")

    @property
    def samplers_per_engine(self) -> int:
        return max(1, self.n_samplers // self.n_ep_engines)

    @property
    def cycle_ns(self) -> float:
        return 1e3 / self.clock_mhz


#: Host-side transport latencies in host-CPU cycles (order-of-magnitude
#: values for a 2-ish GHz host).  CAPI snoops the ring-buffer cache lines, so
#: the host never initiates DMA; PCIe needs the userspace driver to kick DMA
#: transfers and poll for completion (§5, "Interfacing with the Accelerator").
_TRANSPORT_HOST_CYCLES: Dict[str, float] = {"capi": 35.0, "pcie": 330.0}


@dataclass
class InferenceLatency:
    """Breakdown of one inference pass on the accelerator."""

    compute_cycles: float
    noc_cycles: float
    transport_host_cycles: float
    clock_mhz: float

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.noc_cycles

    @property
    def microseconds(self) -> float:
        return self.total_cycles * (1e3 / self.clock_mhz) / 1e3


@dataclass
class CosimReport:
    """Trace-grounded cycle/occupancy estimates for one recorded workload.

    Every figure is a deterministic function of the chain trace and the
    static configuration — replaying the same trace reproduces the report
    exactly (the round-trip tests rely on this).
    """

    transport: str
    clock_mhz: float
    #: Workload shape, straight from the measured trace.
    n_visits: int
    n_slices: int
    total_chain_steps: int
    mean_acceptance: float
    #: List-scheduled timeline: end-to-end cycles over all EP engines.
    makespan_cycles: float
    #: Summed per-visit compute cycles (the work, ignoring scheduling).
    compute_cycles: float
    noc_cycles: float
    #: Per-engine busy cycles under the greedy schedule.
    engine_busy_cycles: Tuple[float, ...]
    sampler_busy_cycles: float
    #: Burn-in adaptation windows recorded across all visits (0 for traces
    #: captured without per-window acceptance trajectories — such traces are
    #: priced exactly as before the trajectories existed).
    adaptation_windows: int = 0
    #: Busy fraction per component class over the makespan.
    occupancy: Dict[str, float] = field(default_factory=dict)

    @property
    def makespan_seconds(self) -> float:
        return self.makespan_cycles / (self.clock_mhz * 1e6)

    @property
    def microseconds_per_slice(self) -> float:
        if not self.n_slices:
            return 0.0
        return self.makespan_seconds * 1e6 / self.n_slices

    @property
    def slices_per_second(self) -> float:
        seconds = self.makespan_seconds
        return self.n_slices / seconds if seconds > 0 else float("inf")

    @property
    def cycles_per_chain_step(self) -> float:
        if not self.total_chain_steps:
            return 0.0
        return self.compute_cycles / self.total_chain_steps


class AcceleratorModel:
    """Latency/throughput model of the BayesPerf accelerator.

    Parameters
    ----------
    config:
        Static accelerator configuration.
    ep_engine, sampler, noc:
        Component models; defaults mirror the prototype.
    """

    def __init__(
        self,
        config: Optional[AcceleratorConfig] = None,
        *,
        ep_engine: Optional[EPEngineUnit] = None,
        sampler: Optional[MCMCSamplerIP] = None,
        noc: Optional[ButterflyNoC] = None,
    ) -> None:
        self.config = config if config is not None else AcceleratorConfig()
        self.ep_engine = ep_engine if ep_engine is not None else EPEngineUnit()
        self.sampler = sampler if sampler is not None else MCMCSamplerIP()
        self.noc = noc if noc is not None else ButterflyNoC(self.config.noc_ports)

    def inference_latency(
        self,
        n_sites: int,
        factors_per_site: int,
        variables_per_site: int,
        *,
        mcmc_samples: int = 256,
        ep_iterations: int = 2,
    ) -> InferenceLatency:
        """Latency of one full EP inference pass over *n_sites* sites.

        Sites are distributed across the EP engines and processed in parallel
        waves; each site update also pays NoC traffic between its engine and
        its samplers plus a global-update exchange with the controller.
        """
        if n_sites <= 0 or factors_per_site <= 0 or variables_per_site <= 0:
            raise ValueError("site dimensions must be positive")
        if mcmc_samples <= 0 or ep_iterations <= 0:
            raise ValueError("mcmc_samples and ep_iterations must be positive")

        site_cycles = self.ep_engine.site_update_cycles(
            factors_per_site,
            variables_per_site,
            self.sampler,
            mcmc_samples,
            samplers_per_engine=self.config.samplers_per_engine,
        )
        waves = math.ceil(n_sites / self.config.n_ep_engines)
        compute_cycles = site_cycles * waves * ep_iterations

        # NoC traffic: each site update ships its state to the samplers and
        # the global approximation back to the controller.
        per_site_noc = self.noc.site_update_cycles(variables_per_site)
        noc_cycles = per_site_noc * n_sites * ep_iterations

        return InferenceLatency(
            compute_cycles=compute_cycles,
            noc_cycles=noc_cycles,
            transport_host_cycles=_TRANSPORT_HOST_CYCLES[self.config.transport],
            clock_mhz=self.config.clock_mhz,
        )

    def cosimulate(self, trace: ChainTrace) -> CosimReport:
        """Replay a recorded chain trace through the device model.

        Every :class:`~repro.fg.mcmc.ChainSiteVisit` is priced with the
        *measured* entry points (actual width, factor count, chain steps
        and acceptances) and list-scheduled greedily onto the EP engines in
        emission order, honouring each slice's sequential dependency chain:
        a slice's visits (its sites within an EP iteration, and its
        successive iterations) ran strictly in order in the software
        sampler — each cavity depends on the previous site update — so they
        may not overlap on the device either.  Visits of *different* slices
        are independent and fill the engines in parallel, which is exactly
        the parallelism the batched software sampler exposes.  The returned
        report's latency/occupancy figures are therefore functions of the
        measured site-visit schedule, not of assumed workload shapes.

        Visits carrying a per-window burn-in acceptance trajectory
        (``ChainSiteVisit.windows``, recorded when the software sampler
        adapted its proposal scales) additionally price the adaptation
        hardware — one scale retune per completed window — so burn-in
        adaptation itself shows up in the cycle counts.  Traces recorded
        without trajectories are priced exactly as before.
        """
        if not trace.visits:
            raise ValueError("cannot co-simulate an empty chain trace")
        visits = sorted(trace.visits, key=lambda visit: visit.sequence)
        samplers_per_engine = self.config.samplers_per_engine

        available: List[float] = [0.0] * self.config.n_ep_engines
        busy: List[float] = [0.0] * self.config.n_ep_engines
        #: Completion time of each slice's latest visit (dependency chain).
        slice_ready: Dict[int, float] = {}
        compute_total = 0.0
        noc_total = 0.0
        sampler_busy = 0.0
        for visit in visits:
            compute = self.ep_engine.site_visit_cycles(
                visit, self.sampler, samplers_per_engine=samplers_per_engine
            )
            noc_cycles = self.noc.site_update_cycles(visit.width)
            # Earliest-free engine, lowest index on ties: deterministic, so
            # a replayed trace schedules identically.
            engine = min(range(len(available)), key=lambda i: available[i])
            start = max(available[engine], slice_ready.get(visit.slice_id, 0.0))
            finish = start + compute + noc_cycles
            available[engine] = finish
            slice_ready[visit.slice_id] = finish
            busy[engine] += compute
            compute_total += compute
            noc_total += noc_cycles
            share, accepted_share = self.sampler.chain_share(
                visit, samplers_per_engine
            )
            sampler_busy += samplers_per_engine * self.sampler.chain_cycles(
                share, visit.width, accepted_share
            )

        makespan = max(available)
        occupancy = {
            "ep_engine": sum(busy) / (len(busy) * makespan) if makespan else 0.0,
            "mcmc_sampler": (
                sampler_busy / (self.config.n_samplers * makespan) if makespan else 0.0
            ),
            # Up to one site-update round trip per engine can be in flight
            # at once, so the fabric's capacity over the makespan is one
            # transfer timeline per engine; normalising by it keeps this a
            # genuine busy fraction (each engine's NoC share is a subset of
            # its own timeline).
            "noc": noc_total / (len(busy) * makespan) if makespan else 0.0,
        }
        return CosimReport(
            transport=self.config.transport,
            clock_mhz=self.config.clock_mhz,
            n_visits=len(visits),
            n_slices=trace.n_slices,
            total_chain_steps=trace.total_steps,
            mean_acceptance=trace.acceptance_rate(),
            adaptation_windows=sum(visit.n_adaptations for visit in visits),
            makespan_cycles=makespan,
            compute_cycles=compute_total,
            noc_cycles=noc_total,
            engine_busy_cycles=tuple(busy),
            sampler_busy_cycles=sampler_busy,
            occupancy=occupancy,
        )

    def sustained_inferences_per_second(
        self, n_sites: int, factors_per_site: int, variables_per_site: int, **kwargs
    ) -> float:
        """How many inference passes per second the device sustains."""
        latency = self.inference_latency(n_sites, factors_per_site, variables_per_site, **kwargs)
        seconds = latency.total_cycles / (self.config.clock_mhz * 1e6)
        return 1.0 / seconds if seconds > 0 else float("inf")

    def host_read_overhead_cycles(self) -> float:
        """Host cycles added to a counter read when results are polled.

        Because results are written into host memory ring buffers ahead of
        time (CAPI) or via completed DMA (PCIe), the monitoring application
        only pays a small polling cost — this is what keeps the accelerated
        read within ~2% of a native read (Fig. 3).
        """
        return _TRANSPORT_HOST_CYCLES[self.config.transport]
