"""The accelerator device model: EP engines + samplers + NoC + host transport."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.accelerator.ep_engine import EPEngineUnit, MCMCSamplerIP
from repro.accelerator.noc import ButterflyNoC

#: Host transport protocols supported by the prototype (§5 / §6.1).
TRANSPORTS = ("capi", "pcie")


@dataclass(frozen=True)
class AcceleratorConfig:
    """Static configuration of the BayesPerf accelerator.

    The defaults follow the prototype: a 250 MHz Virtex UltraScale+ design
    with 4 EP engines and 12 MCMC samplers on a 16-port butterfly NoC,
    attached over CAPI 2.0 on Power9 or PCIe3 x16 + XDMA on x86.
    """

    transport: str = "capi"
    clock_mhz: float = 250.0
    n_ep_engines: int = 4
    n_samplers: int = 12
    noc_ports: int = 16
    dram_channels: int = 4
    dram_channel_gb: int = 16

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        if self.n_ep_engines <= 0 or self.n_samplers <= 0:
            raise ValueError("engine and sampler counts must be positive")
        if self.n_ep_engines + self.n_samplers > self.noc_ports:
            raise ValueError("EP engines plus samplers cannot exceed the NoC port count")

    @property
    def samplers_per_engine(self) -> int:
        return max(1, self.n_samplers // self.n_ep_engines)

    @property
    def cycle_ns(self) -> float:
        return 1e3 / self.clock_mhz


#: Host-side transport latencies in host-CPU cycles (order-of-magnitude
#: values for a 2-ish GHz host).  CAPI snoops the ring-buffer cache lines, so
#: the host never initiates DMA; PCIe needs the userspace driver to kick DMA
#: transfers and poll for completion (§5, "Interfacing with the Accelerator").
_TRANSPORT_HOST_CYCLES: Dict[str, float] = {"capi": 35.0, "pcie": 330.0}


@dataclass
class InferenceLatency:
    """Breakdown of one inference pass on the accelerator."""

    compute_cycles: float
    noc_cycles: float
    transport_host_cycles: float
    clock_mhz: float

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.noc_cycles

    @property
    def microseconds(self) -> float:
        return self.total_cycles * (1e3 / self.clock_mhz) / 1e3


class AcceleratorModel:
    """Latency/throughput model of the BayesPerf accelerator.

    Parameters
    ----------
    config:
        Static accelerator configuration.
    ep_engine, sampler, noc:
        Component models; defaults mirror the prototype.
    """

    def __init__(
        self,
        config: Optional[AcceleratorConfig] = None,
        *,
        ep_engine: Optional[EPEngineUnit] = None,
        sampler: Optional[MCMCSamplerIP] = None,
        noc: Optional[ButterflyNoC] = None,
    ) -> None:
        self.config = config if config is not None else AcceleratorConfig()
        self.ep_engine = ep_engine if ep_engine is not None else EPEngineUnit()
        self.sampler = sampler if sampler is not None else MCMCSamplerIP()
        self.noc = noc if noc is not None else ButterflyNoC(self.config.noc_ports)

    def inference_latency(
        self,
        n_sites: int,
        factors_per_site: int,
        variables_per_site: int,
        *,
        mcmc_samples: int = 256,
        ep_iterations: int = 2,
    ) -> InferenceLatency:
        """Latency of one full EP inference pass over *n_sites* sites.

        Sites are distributed across the EP engines and processed in parallel
        waves; each site update also pays NoC traffic between its engine and
        its samplers plus a global-update exchange with the controller.
        """
        if n_sites <= 0 or factors_per_site <= 0 or variables_per_site <= 0:
            raise ValueError("site dimensions must be positive")
        if mcmc_samples <= 0 or ep_iterations <= 0:
            raise ValueError("mcmc_samples and ep_iterations must be positive")

        site_cycles = self.ep_engine.site_update_cycles(
            factors_per_site,
            variables_per_site,
            self.sampler,
            mcmc_samples,
            samplers_per_engine=self.config.samplers_per_engine,
        )
        waves = math.ceil(n_sites / self.config.n_ep_engines)
        compute_cycles = site_cycles * waves * ep_iterations

        # NoC traffic: each site update ships its state to the samplers and
        # the global approximation back to the controller.
        payload = 8 * variables_per_site * (variables_per_site + 1)
        per_site_noc = (
            self.noc.transfer(0, self.noc.n_ports - 1, payload).cycles
            + self.noc.transfer(self.noc.n_ports - 1, 0, payload).cycles
        )
        noc_cycles = per_site_noc * n_sites * ep_iterations

        return InferenceLatency(
            compute_cycles=compute_cycles,
            noc_cycles=noc_cycles,
            transport_host_cycles=_TRANSPORT_HOST_CYCLES[self.config.transport],
            clock_mhz=self.config.clock_mhz,
        )

    def sustained_inferences_per_second(
        self, n_sites: int, factors_per_site: int, variables_per_site: int, **kwargs
    ) -> float:
        """How many inference passes per second the device sustains."""
        latency = self.inference_latency(n_sites, factors_per_site, variables_per_site, **kwargs)
        seconds = latency.total_cycles / (self.config.clock_mhz * 1e6)
        return 1.0 / seconds if seconds > 0 else float("inf")

    def host_read_overhead_cycles(self) -> float:
        """Host cycles added to a counter read when results are polled.

        Because results are written into host memory ring buffers ahead of
        time (CAPI) or via completed DMA (PCIe), the monitoring application
        only pays a small polling cost — this is what keeps the accelerated
        read within ~2% of a native read (Fig. 3).
        """
        return _TRANSPORT_HOST_CYCLES[self.config.transport]
