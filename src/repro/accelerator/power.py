"""FPGA area and power model (Table 1).

Table 1 reports FPGA resource utilisation (BRAM/DSP/FF/LUT/URAM) and power
(Vivado estimate and measured) for the x86-PCIe and ppc64-CAPI builds of the
accelerator, and the text compares the measured power against the host CPU
TDPs (5.8x / 11.8x better).  The model composes per-component resource and
power costs (EP engines, MCMC samplers, NoC routers, transport IP, DRAM
controllers) into device-level totals.

The Vivado-style figures assume every unit switches continuously; the
trace-driven :meth:`FPGAResourceModel.energy_report` instead scales each
compute component's dynamic power by the *measured* busy fraction a
:class:`~repro.accelerator.device.CosimReport` derived from a recorded
chain trace, yielding energy and average-power figures for the workload
that actually ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.accelerator.device import AcceleratorConfig, CosimReport

#: Total resources of the target device (Xilinx Virtex UltraScale+ VU3P).
VU3P_RESOURCES: Dict[str, float] = {
    "BRAM": 720.0,
    "DSP": 2280.0,
    "FF": 788160.0,
    "LUT": 394080.0,
    "URAM": 320.0,
}

#: Per-component resource usage (absolute units of the device resources).
_COMPONENT_RESOURCES: Dict[str, Dict[str, float]] = {
    "ep_engine": {"BRAM": 48.0, "DSP": 250.0, "FF": 52000.0, "LUT": 36000.0, "URAM": 22.0},
    "mcmc_sampler": {"BRAM": 15.0, "DSP": 55.0, "FF": 9500.0, "LUT": 8000.0, "URAM": 5.5},
    "noc_router": {"BRAM": 1.5, "DSP": 0.0, "FF": 2200.0, "LUT": 1800.0, "URAM": 0.0},
    "dram_controller": {"BRAM": 16.0, "DSP": 6.0, "FF": 12000.0, "LUT": 8000.0, "URAM": 12.0},
    "transport_pcie": {"BRAM": 40.0, "DSP": 12.0, "FF": 30000.0, "LUT": 28000.0, "URAM": 4.0},
    "transport_capi": {"BRAM": 60.0, "DSP": 8.0, "FF": 24000.0, "LUT": 22000.0, "URAM": 4.0},
}

#: Static + per-component dynamic power in watts (Vivado-style estimates).
_COMPONENT_POWER_W: Dict[str, float] = {
    "static": 2.0,
    "ep_engine": 0.85,
    "mcmc_sampler": 0.27,
    "noc_router": 0.04,
    "dram_controller": 0.3,
    "transport_pcie": 1.0,
    "transport_capi": 0.35,
}

#: Ratio between bench-measured board power and the Vivado estimate (board
#: regulators, DRAM devices and I/O are not part of the FPGA power report).
_MEASURED_OVER_ESTIMATE = 1.5


@dataclass
class ResourceReport:
    """Utilisation and power summary for one accelerator build."""

    name: str
    utilization_percent: Dict[str, float] = field(default_factory=dict)
    vivado_power_w: float = 0.0
    measured_power_w: float = 0.0

    def over_budget(self) -> Dict[str, float]:
        """Resources exceeding 100% utilisation (empty when the design fits)."""
        return {k: v for k, v in self.utilization_percent.items() if v > 100.0}

    def power_efficiency_vs(self, cpu_tdp_watts: float) -> float:
        """How many times less power the accelerator draws than the CPU."""
        if self.measured_power_w <= 0:
            return float("inf")
        return cpu_tdp_watts / self.measured_power_w


@dataclass
class EnergyReport:
    """Workload energy derived from a trace-driven co-simulation."""

    name: str
    makespan_seconds: float
    static_joules: float
    #: Dynamic energy per component class over the makespan.
    dynamic_joules: Dict[str, float] = field(default_factory=dict)
    n_slices: int = 0

    @property
    def total_joules(self) -> float:
        """FPGA-model energy: static plus occupancy-scaled dynamic terms.

        This is the Vivado-style figure; ``average_power_w x
        makespan_seconds`` reproduces it exactly.  Board-level quantities
        (regulators, DRAM devices, I/O) apply the bench correction via the
        ``measured_*`` properties instead.
        """
        return self.static_joules + sum(self.dynamic_joules.values())

    @property
    def average_power_w(self) -> float:
        """Mean FPGA-model power over the workload (``total_joules`` basis)."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.total_joules / self.makespan_seconds

    @property
    def measured_average_power_w(self) -> float:
        """Mean board power a bench meter would read (includes regulators,
        DRAM devices and I/O, like :meth:`FPGAResourceModel.measured_power_w`)."""
        return _MEASURED_OVER_ESTIMATE * self.average_power_w

    @property
    def millijoules_per_slice(self) -> float:
        """FPGA-model energy per corrected slice (``total_joules`` basis)."""
        if not self.n_slices:
            return 0.0
        return 1e3 * self.total_joules / self.n_slices

    def power_efficiency_vs(self, cpu_tdp_watts: float) -> float:
        """How many times less *board* power the workload draws than the CPU."""
        power = self.measured_average_power_w
        return cpu_tdp_watts / power if power > 0 else float("inf")


class FPGAResourceModel:
    """Compose per-component costs into a device-level area/power report."""

    def __init__(
        self,
        config: AcceleratorConfig,
        *,
        device_resources: Mapping[str, float] = None,
    ) -> None:
        self.config = config
        self.device_resources = dict(device_resources or VU3P_RESOURCES)

    def _component_counts(self) -> Dict[str, int]:
        transport = "transport_capi" if self.config.transport == "capi" else "transport_pcie"
        return {
            "ep_engine": self.config.n_ep_engines,
            "mcmc_sampler": self.config.n_samplers,
            "noc_router": self.config.noc_ports,
            "dram_controller": self.config.dram_channels,
            transport: 1,
        }

    def utilization(self) -> Dict[str, float]:
        """Percent utilisation of each device resource."""
        totals = {resource: 0.0 for resource in self.device_resources}
        for component, count in self._component_counts().items():
            usage = _COMPONENT_RESOURCES[component]
            for resource in totals:
                totals[resource] += usage.get(resource, 0.0) * count
        return {
            resource: 100.0 * totals[resource] / self.device_resources[resource]
            for resource in totals
        }

    def vivado_power_w(self) -> float:
        """Vivado-style power estimate (static + dynamic per component)."""
        power = _COMPONENT_POWER_W["static"]
        for component, count in self._component_counts().items():
            power += _COMPONENT_POWER_W[component] * count
        return power

    def measured_power_w(self) -> float:
        """Bench-measured board power (regulators, DRAM and I/O included)."""
        return self.vivado_power_w() * _MEASURED_OVER_ESTIMATE

    def report(self, name: str) -> ResourceReport:
        """Full area/power report for this configuration."""
        return ResourceReport(
            name=name,
            utilization_percent=self.utilization(),
            vivado_power_w=self.vivado_power_w(),
            measured_power_w=self.measured_power_w(),
        )

    def energy_report(self, cosim: CosimReport, name: str = "cosim") -> EnergyReport:
        """Energy of the co-simulated workload, occupancy-scaled.

        Static power burns for the whole makespan; each compute component's
        dynamic power is weighted by the busy fraction the co-simulation
        measured (an idle sampler doesn't switch), while the DRAM
        controllers and the transport IP stay at their duty power for the
        run — they service the ring buffers continuously.  Because every
        input comes from the deterministic co-simulation of a recorded
        trace, replaying the trace reproduces the report exactly.
        """
        seconds = cosim.makespan_seconds
        counts = self._component_counts()
        transport = "transport_capi" if self.config.transport == "capi" else "transport_pcie"
        engine_occupancy = cosim.occupancy.get("ep_engine", 0.0)
        sampler_occupancy = cosim.occupancy.get("mcmc_sampler", 0.0)
        noc_occupancy = min(cosim.occupancy.get("noc", 0.0), 1.0)
        dynamic = {
            "ep_engine": counts["ep_engine"]
            * _COMPONENT_POWER_W["ep_engine"]
            * engine_occupancy
            * seconds,
            "mcmc_sampler": counts["mcmc_sampler"]
            * _COMPONENT_POWER_W["mcmc_sampler"]
            * sampler_occupancy
            * seconds,
            "noc_router": counts["noc_router"]
            * _COMPONENT_POWER_W["noc_router"]
            * noc_occupancy
            * seconds,
            "dram_controller": counts["dram_controller"]
            * _COMPONENT_POWER_W["dram_controller"]
            * seconds,
            transport: _COMPONENT_POWER_W[transport] * seconds,
        }
        return EnergyReport(
            name=name,
            makespan_seconds=seconds,
            static_joules=_COMPONENT_POWER_W["static"] * seconds,
            dynamic_joules=dynamic,
            n_slices=cosim.n_slices,
        )
