"""BayesPerf accelerator model (§5).

The paper prototypes the accelerator on a Xilinx Virtex UltraScale+ FPGA with
four EP execution engines and twelve MCMC sampler IPs connected by a
16-port butterfly NoC, reached over CAPI 2.0 (Power9) or PCIe+XDMA (x86).
No FPGA is available here, so this package provides cycle- and
resource-accurate *models* of the same architecture: an EP-engine/sampler
pipeline model, a butterfly NoC model, transport models for CAPI and PCIe,
a read-latency model (Fig. 3) and an area/power model (Table 1).

Since PR 4 the models are *trace-driven*: a
:class:`~repro.fg.mcmc.ChainTrace` recorded from the batched per-site
tilted-MCMC sampler (the registered ``"mcmc"`` estimator) replays through
:meth:`AcceleratorModel.cosimulate`, and every latency, occupancy and
energy figure derives from the measured site-visit schedule and acceptance
rates of the software workload (see ``examples/accelerator_cosim.py``).
Traces whose chains recorded per-window burn-in acceptance trajectories
(``ChainSiteVisit.windows``) additionally price the proposal-scale
adaptation hardware, one retune per completed window
(``EPEngineUnit.cycles_per_adaptation``); see ``examples/api_pipeline.py``
for capture-by-streaming through :meth:`repro.api.Pipeline.stream`.
"""

from repro.accelerator.noc import ButterflyNoC
from repro.accelerator.ep_engine import EPEngineUnit, MCMCSamplerIP
from repro.accelerator.device import AcceleratorConfig, AcceleratorModel, CosimReport
from repro.accelerator.latency import ReadLatencyModel, ReadPath
from repro.accelerator.power import EnergyReport, FPGAResourceModel, ResourceReport

__all__ = [
    "ButterflyNoC",
    "EPEngineUnit",
    "MCMCSamplerIP",
    "AcceleratorConfig",
    "AcceleratorModel",
    "CosimReport",
    "EnergyReport",
    "ReadLatencyModel",
    "ReadPath",
    "FPGAResourceModel",
    "ResourceReport",
]
