"""Linear algebraic relations between events.

Every relation has the form ``sum_i coefficient_i * quantity_i = 0`` and is
interpreted statistically: when measurements are noisy, the relation becomes
a soft constraint whose slack is controlled by ``tolerance`` (a relative
standard deviation on the residual, §4 "Statistical Dependencies").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.events import semantics as sem
from repro.events.catalog import EventCatalog


@dataclass(frozen=True)
class LinearRelation:
    """A linear invariant over semantic quantities.

    Parameters
    ----------
    name:
        Short identifier, e.g. ``"l2_source"``.
    terms:
        Mapping of semantic key to coefficient.  The invariant asserts
        ``sum(coef * value) == 0`` on ground-truth data.
    tolerance:
        Relative slack of the relation when used as a soft constraint.  The
        constraint standard deviation is ``tolerance`` times the magnitude of
        the relation's terms.
    description:
        Human-readable statement of the invariant.
    """

    name: str
    terms: Mapping[str, float]
    tolerance: float = 0.01
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("relation name must be non-empty")
        if len(self.terms) < 2:
            raise ValueError(f"relation {self.name!r} needs at least two terms")
        if self.tolerance <= 0:
            raise ValueError(f"relation {self.name!r} tolerance must be positive")
        for key, coef in self.terms.items():
            if not sem.is_semantic(key):
                raise ValueError(f"relation {self.name!r} references unknown semantic {key!r}")
            if coef == 0:
                raise ValueError(f"relation {self.name!r} has a zero coefficient for {key!r}")
        # Freeze the mapping so the dataclass is hashable in practice.
        object.__setattr__(self, "terms", dict(self.terms))

    @property
    def semantics(self) -> Tuple[str, ...]:
        """Semantic keys referenced by this relation."""
        return tuple(self.terms)

    def residual(self, values: Mapping[str, float]) -> float:
        """Signed residual ``sum(coef * value)`` on the supplied values."""
        return float(sum(coef * float(values[key]) for key, coef in self.terms.items()))

    def magnitude(self, values: Mapping[str, float]) -> float:
        """Scale of the relation's terms, used to normalise the residual."""
        return float(sum(abs(coef) * abs(float(values[key])) for key, coef in self.terms.items()))

    def relative_residual(self, values: Mapping[str, float]) -> float:
        """Residual normalised by the magnitude of the participating terms."""
        mag = self.magnitude(values)
        if mag <= 0:
            return 0.0
        return abs(self.residual(values)) / mag

    def is_satisfied(self, values: Mapping[str, float], rtol: float = 1e-6) -> bool:
        """Whether the values satisfy the relation up to relative tolerance *rtol*."""
        return self.relative_residual(values) <= rtol

    def instantiate(self, catalog: EventCatalog) -> "EventRelation":
        """Translate the relation into event names for *catalog*.

        The preferred event for each semantic is used; event scale factors
        are folded into the coefficients so the relation still holds on raw
        event counts.  Raises ``KeyError`` if the catalog lacks an event for
        any semantic in the relation.
        """
        coefficients: Dict[str, float] = {}
        for key, coef in self.terms.items():
            spec = catalog.event_for_semantic(key)
            coefficients[spec.name] = coef / spec.scale
        return EventRelation(
            name=self.name,
            coefficients=coefficients,
            tolerance=self.tolerance,
            description=self.description,
            source=self,
        )


@dataclass(frozen=True)
class EventRelation:
    """A :class:`LinearRelation` instantiated over concrete event names."""

    name: str
    coefficients: Mapping[str, float]
    tolerance: float = 0.01
    description: str = ""
    source: LinearRelation = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.coefficients) < 2:
            raise ValueError(f"event relation {self.name!r} needs at least two terms")
        object.__setattr__(self, "coefficients", dict(self.coefficients))

    @property
    def events(self) -> Tuple[str, ...]:
        """Event names referenced by this relation."""
        return tuple(self.coefficients)

    def residual(self, values: Mapping[str, float]) -> float:
        """Signed residual on the supplied event values."""
        return float(
            sum(coef * float(values[name]) for name, coef in self.coefficients.items())
        )

    def magnitude(self, values: Mapping[str, float]) -> float:
        """Scale of the relation's terms on the supplied event values."""
        return float(
            sum(abs(coef) * abs(float(values[name])) for name, coef in self.coefficients.items())
        )

    def relative_residual(self, values: Mapping[str, float]) -> float:
        """Residual normalised by the magnitude of the participating terms."""
        mag = self.magnitude(values)
        if mag <= 0:
            return 0.0
        return abs(self.residual(values)) / mag

    def is_satisfied(self, values: Mapping[str, float], rtol: float = 1e-6) -> bool:
        """Whether the event values satisfy the relation up to *rtol*."""
        return self.relative_residual(values) <= rtol

    def restricted_to(self, available: Mapping[str, float]) -> bool:
        """Whether every event of the relation is present in *available*."""
        return all(name in available for name in self.coefficients)
