"""Microarchitectural invariant library.

Invariants are algebraic relations between event semantics (e.g. *L2 accesses
equal L1D misses plus L1I misses*, or the DRAM-bandwidth identity from the
paper's footnote 1).  They are written once over semantic keys and
instantiated per catalog into relations over concrete event names; the factor
graph used by the BayesPerf model is compiled from these relations.

The same relations drive the scenario grid's ``"invariant-aware"``
scheduling policy (:func:`repro.scheduling.invariant_aware_schedule`):
events share a counter configuration only when an instantiated relation
joins them, so every configuration carries jointly-constrained events.
"""

from repro.invariants.relation import EventRelation, LinearRelation
from repro.invariants.library import InvariantLibrary, standard_invariants

__all__ = [
    "LinearRelation",
    "EventRelation",
    "InvariantLibrary",
    "standard_invariants",
]
