"""The standard invariant library shared by both microarchitectures.

The relations below encode the design knowledge the paper draws from CPU
vendor manuals (§4, "Statistical Dependencies"): cache-hierarchy flow
conservation, pipeline slot accounting, stall decomposition, and the
DRAM-bandwidth identity of footnote 1.  The machine model in
:mod:`repro.uarch` generates ground truth that satisfies every relation here
exactly, mirroring the fact that real hardware satisfies its own invariants.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.events import semantics as sem
from repro.events.catalog import EventCatalog
from repro.invariants.relation import EventRelation, LinearRelation


class InvariantLibrary:
    """An ordered collection of :class:`LinearRelation`."""

    def __init__(self, relations: Iterable[LinearRelation]) -> None:
        self._relations: List[LinearRelation] = list(relations)
        names = [r.name for r in self._relations]
        if len(names) != len(set(names)):
            raise ValueError("duplicate relation names in invariant library")

    def __iter__(self) -> Iterator[LinearRelation]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def get(self, name: str) -> LinearRelation:
        for relation in self._relations:
            if relation.name == name:
                return relation
        raise KeyError(f"unknown relation {name!r}")

    def names(self) -> Tuple[str, ...]:
        return tuple(r.name for r in self._relations)

    def semantics(self) -> Tuple[str, ...]:
        """All semantics referenced by at least one relation."""
        seen: Set[str] = set()
        ordered: List[str] = []
        for relation in self._relations:
            for key in relation.semantics:
                if key not in seen:
                    seen.add(key)
                    ordered.append(key)
        return tuple(ordered)

    def relations_for(self, semantic: str) -> Tuple[LinearRelation, ...]:
        """Relations that mention the given semantic."""
        return tuple(r for r in self._relations if semantic in r.terms)

    def verify(self, values: Mapping[str, float], rtol: float = 1e-6) -> Dict[str, float]:
        """Relative residual of every relation whose semantics are all present."""
        report: Dict[str, float] = {}
        for relation in self._relations:
            if all(key in values for key in relation.semantics):
                report[relation.name] = relation.relative_residual(values)
        return report

    def violated(self, values: Mapping[str, float], rtol: float = 1e-6) -> Tuple[str, ...]:
        """Names of relations violated beyond *rtol* on the supplied values."""
        return tuple(name for name, rel in self.verify(values, rtol).items() if rel > rtol)

    def for_catalog(
        self, catalog: EventCatalog, events: Optional[Sequence[str]] = None
    ) -> Tuple[EventRelation, ...]:
        """Instantiate the library over a catalog's event names.

        Parameters
        ----------
        catalog:
            Event catalog providing the semantic-to-event mapping.
        events:
            Optional restriction: only relations whose instantiated events all
            appear in this collection are returned.  This matches the fact
            that a monitoring session only reasons about the events it was
            asked to collect.
        """
        allowed = set(events) if events is not None else None
        instantiated: List[EventRelation] = []
        for relation in self._relations:
            try:
                event_relation = relation.instantiate(catalog)
            except KeyError:
                continue
            if allowed is not None and not set(event_relation.events) <= allowed:
                continue
            instantiated.append(event_relation)
        return tuple(instantiated)


def standard_invariants() -> InvariantLibrary:
    """Build the standard invariant library used throughout the reproduction."""
    width = float(sem.PIPELINE_WIDTH)
    line = float(sem.CACHE_LINE_BYTES)
    dma_bytes = float(sem.DMA_TRANSACTION_BYTES)
    dma_lines = dma_bytes / line

    relations = [
        LinearRelation(
            name="cycle_decomposition",
            terms={sem.CYCLES: 1.0, sem.ACTIVE_CYCLES: -1.0, sem.STALL_CYCLES_TOTAL: -1.0},
            description="Every cycle is either active or stalled.",
        ),
        LinearRelation(
            name="stall_split",
            terms={sem.STALL_CYCLES_TOTAL: 1.0, sem.STALL_FRONTEND: -1.0, sem.STALL_BACKEND: -1.0},
            description="Stall cycles split into front-end and back-end stalls.",
        ),
        LinearRelation(
            name="backend_split",
            terms={sem.STALL_BACKEND: 1.0, sem.STALL_CORE: -1.0, sem.STALL_MEM: -1.0},
            description="Back-end stalls split into core-bound and memory-bound stalls.",
        ),
        LinearRelation(
            name="memory_stall_split",
            terms={
                sem.STALL_MEM: 1.0,
                sem.STALL_DRAM_BW: -1.0,
                sem.STALL_DRAM_LAT: -1.0,
                sem.STALL_L2_PENDING: -1.0,
            },
            description="Memory stalls split into DRAM bandwidth, DRAM latency and L2-pending stalls.",
        ),
        LinearRelation(
            name="branch_split",
            terms={sem.BRANCHES: 1.0, sem.BRANCH_TAKEN: -1.0, sem.BRANCH_NOT_TAKEN: -1.0},
            description="Branches are either taken or not taken.",
        ),
        LinearRelation(
            name="mem_inst_split",
            terms={sem.MEM_INST_RETIRED: 1.0, sem.LOADS_RETIRED: -1.0, sem.STORES_RETIRED: -1.0},
            description="Memory instructions are loads or stores.",
        ),
        LinearRelation(
            name="l1d_access_source",
            terms={sem.L1D_ACCESS: 1.0, sem.MEM_INST_RETIRED: -1.0},
            description="Every retired memory instruction accesses the L1 data cache.",
        ),
        LinearRelation(
            name="l1d_split",
            terms={sem.L1D_ACCESS: 1.0, sem.L1D_HIT: -1.0, sem.L1D_MISS: -1.0},
            description="L1D accesses either hit or miss.",
        ),
        LinearRelation(
            name="l2_source",
            terms={sem.L2_ACCESS: 1.0, sem.L1D_MISS: -1.0, sem.L1I_MISS: -1.0},
            description="L2 requests are produced by L1 data and instruction misses.",
        ),
        LinearRelation(
            name="l2_split",
            terms={sem.L2_ACCESS: 1.0, sem.L2_HIT: -1.0, sem.L2_MISS: -1.0},
            description="L2 accesses either hit or miss.",
        ),
        LinearRelation(
            name="llc_source",
            terms={sem.LLC_ACCESS: 1.0, sem.L2_MISS: -1.0},
            description="LLC requests are produced by L2 misses.",
        ),
        LinearRelation(
            name="llc_split",
            terms={sem.LLC_ACCESS: 1.0, sem.LLC_HIT: -1.0, sem.LLC_MISS: -1.0},
            description="LLC accesses either hit or miss.",
        ),
        LinearRelation(
            name="offcore_read_source",
            terms={sem.OFFCORE_DEMAND_READS: 1.0, sem.LLC_MISS: -1.0},
            description="Demand reads leaving the core correspond to LLC misses.",
        ),
        LinearRelation(
            name="dram_read_source",
            terms={
                sem.DRAM_READS: 1.0,
                sem.OFFCORE_DEMAND_READS: -1.0,
                sem.DMA_TRANSACTIONS: -dma_lines,
            },
            description="DRAM reads are demand reads plus DMA transactions (in cache-line units).",
        ),
        LinearRelation(
            name="dram_write_source",
            terms={sem.DRAM_WRITES: 1.0, sem.OFFCORE_WRITEBACKS: -1.0},
            description="DRAM writes are cache-line writebacks leaving the LLC.",
        ),
        LinearRelation(
            name="dram_split",
            terms={sem.DRAM_ACCESSES: 1.0, sem.DRAM_READS: -1.0, sem.DRAM_WRITES: -1.0},
            description="DRAM accesses are reads plus writes.",
        ),
        LinearRelation(
            name="dram_bytes_identity",
            terms={sem.DRAM_BYTES: 1.0, sem.DRAM_ACCESSES: -line},
            description="Each DRAM access moves one cache line.",
        ),
        LinearRelation(
            name="dma_bytes_identity",
            terms={sem.DMA_BYTES: 1.0, sem.DMA_TRANSACTIONS: -dma_bytes},
            description="Each DMA transaction moves a fixed payload.",
        ),
        LinearRelation(
            name="uops_split",
            terms={sem.UOPS_ISSUED: 1.0, sem.UOPS_RETIRED: -1.0, sem.UOPS_CANCELLED: -1.0},
            description="Issued micro-ops either retire or are cancelled.",
        ),
        LinearRelation(
            name="slots_total_identity",
            terms={sem.ISSUE_SLOTS_TOTAL: 1.0, sem.CYCLES: -width},
            description="The pipeline offers a fixed number of issue slots per cycle.",
        ),
        LinearRelation(
            name="slots_split",
            terms={sem.ISSUE_SLOTS_TOTAL: 1.0, sem.ISSUE_SLOTS_USED: -1.0, sem.ISSUE_SLOTS_EMPTY: -1.0},
            description="Issue slots are either used or left empty.",
        ),
        LinearRelation(
            name="slots_used_uops",
            terms={sem.ISSUE_SLOTS_USED: 1.0, sem.UOPS_ISSUED: -1.0},
            description="Each used issue slot carries one issued micro-op.",
        ),
        LinearRelation(
            name="frontend_stall_model",
            terms={sem.STALL_FRONTEND: 1.0, sem.BRANCH_MISSES: -12.0, sem.L1I_MISS: -18.0},
            tolerance=0.05,
            description="Front-end stalls are driven by branch mispredictions and instruction-cache misses.",
        ),
        LinearRelation(
            name="l2_pending_stall_model",
            terms={sem.STALL_L2_PENDING: 1.0, sem.L2_MISS: -8.0},
            tolerance=0.05,
            description="Cycles with pending L2 misses scale with the number of L2 misses.",
        ),
        LinearRelation(
            name="dram_latency_stall_model",
            terms={sem.STALL_DRAM_LAT: 1.0, sem.LLC_MISS: -40.0},
            tolerance=0.05,
            description="DRAM-latency stalls scale with LLC misses at the nominal memory latency.",
        ),
        LinearRelation(
            name="dram_bw_stall_model",
            terms={sem.STALL_DRAM_BW: 1.0, sem.DRAM_ACCESSES: -2.0},
            tolerance=0.05,
            description="DRAM-bandwidth stalls scale with the number of DRAM accesses.",
        ),
        LinearRelation(
            name="uop_cracking_model",
            terms={sem.UOPS_RETIRED: 1.0, sem.INSTRUCTIONS: -1.3},
            tolerance=0.05,
            description="Retired micro-ops per instruction follow the ISA's average cracking ratio.",
        ),
        LinearRelation(
            name="page_walk_source",
            terms={sem.PAGE_WALKS: 1.0, sem.DTLB_MISS: -1.0, sem.ITLB_MISS: -1.0},
            description="Page walks are triggered by data- and instruction-TLB misses.",
        ),
        LinearRelation(
            name="pcie_bytes_split",
            terms={sem.PCIE_TOTAL_BYTES: 1.0, sem.PCIE_READ_BYTES: -1.0, sem.PCIE_WRITE_BYTES: -1.0},
            description="PCIe payload bytes are reads plus writes.",
        ),
        LinearRelation(
            name="pcie_transaction_bytes",
            terms={sem.PCIE_TOTAL_BYTES: 1.0, sem.PCIE_TRANSACTIONS: -dma_bytes},
            description="Each PCIe transaction carries a fixed average payload.",
        ),
        LinearRelation(
            name="pcie_dma_traffic",
            terms={sem.PCIE_TOTAL_BYTES: 1.0, sem.DMA_BYTES: -1.0},
            tolerance=0.05,
            description="PCIe payload traffic is dominated by DMA traffic.",
        ),
    ]
    return InvariantLibrary(relations)
