"""A ``perf_event_open``-style streaming API (the "BayesPerf shim" of §5).

The shim exposes the same open/enable/read life-cycle a Linux perf user
expects, while internally running the whole BayesPerf pipeline: events are
registered, a schedule is built, the kernel side pushes PMI samples into a
ring buffer, the engine consumes them, and the monitoring application polls
posterior estimates from a second ring buffer — never waiting on inference
(the accelerator's role in the paper's design).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.engine import BayesPerfEngine
from repro.core.posterior import EventEstimate, PosteriorReport
from repro.core.ringbuffer import RingBuffer
from repro.events.registry import catalog_for
from repro.pmu.noise import NoiseModel
from repro.pmu.sampling import MultiplexedSampler, SamplingRecord
from repro.scheduling.overlap import BayesPerfScheduler
from repro.uarch.machine import Machine, MachineConfig, MachineTrace
from repro.uarch.profile import WorkloadSpec
from repro.workloads.registry import get_workload


@dataclass(frozen=True)
class PerfEventHandle:
    """File-descriptor-like handle returned by :meth:`BayesPerfShim.perf_event_open`."""

    fd: int
    event: str


class ShimError(RuntimeError):
    """Raised when the shim API is used out of order."""


class BayesPerfShim:
    """Streaming monitoring interface backed by the BayesPerf engine.

    Typical use::

        shim = BayesPerfShim("x86")
        fd = shim.perf_event_open("LONGEST_LAT_CACHE.MISS")
        shim.attach("KMeans", n_ticks=100)
        shim.enable()
        shim.step(10)
        estimate = shim.read(fd)          # posterior mean + uncertainty

    Parameters
    ----------
    arch:
        Microarchitecture name.
    buffer_capacity:
        Capacity of the kernel-to-shim and shim-to-user ring buffers.
    noise, samples_per_tick, machine_config, seed:
        Forwarded to the underlying PMU and machine models.
    engine_kwargs:
        Extra arguments for :class:`BayesPerfEngine`.
    """

    def __init__(
        self,
        arch: str = "x86",
        *,
        buffer_capacity: int = 4096,
        noise: Optional[NoiseModel] = None,
        samples_per_tick: int = 4,
        machine_config: Optional[MachineConfig] = None,
        seed: int = 0,
        engine_kwargs: Optional[Dict] = None,
    ) -> None:
        self.catalog = catalog_for(arch)
        self.noise = noise if noise is not None else NoiseModel()
        self.samples_per_tick = samples_per_tick
        self.machine_config = machine_config if machine_config is not None else MachineConfig(
            name=self.catalog.name
        )
        self.seed = seed
        self.engine_kwargs = dict(engine_kwargs) if engine_kwargs else {}

        self._handles: Dict[int, PerfEventHandle] = {}
        self._next_fd = 3  # mimic "after stdin/stdout/stderr"
        self._enabled = False
        self._attached = False
        self._tick = 0

        self.kernel_buffer: RingBuffer[SamplingRecord] = RingBuffer(buffer_capacity)
        self.user_buffer: RingBuffer[PosteriorReport] = RingBuffer(buffer_capacity)

        self._machine_trace: Optional[MachineTrace] = None
        self._sampler: Optional[MultiplexedSampler] = None
        self._engine: Optional[BayesPerfEngine] = None
        self._latest: Dict[str, EventEstimate] = {}

    # -- registration -------------------------------------------------------

    def perf_event_open(self, event: str) -> PerfEventHandle:
        """Register interest in one event and return its handle."""
        if self._attached:
            raise ShimError("cannot register events after attach()")
        self.catalog.get(event)  # validates the name
        handle = PerfEventHandle(fd=self._next_fd, event=event)
        self._handles[handle.fd] = handle
        self._next_fd += 1
        return handle

    @property
    def registered_events(self) -> Sequence[str]:
        return tuple(dict.fromkeys(handle.event for handle in self._handles.values()))

    # -- lifecycle ------------------------------------------------------------

    def attach(self, workload: Union[str, WorkloadSpec], *, n_ticks: Optional[int] = None) -> None:
        """Bind the shim to a target workload run."""
        if not self._handles:
            raise ShimError("register at least one event before attach()")
        spec = get_workload(workload) if isinstance(workload, str) else workload
        if not isinstance(spec, WorkloadSpec):
            raise ShimError(
                f"workload {getattr(spec, 'name', spec)!r} is not a simulatable "
                "WorkloadSpec (recorded traces replay through repro.fleet)"
            )
        ticks = n_ticks if n_ticks is not None else spec.total_ticks
        machine = Machine(self.machine_config, spec, seed=self.seed)
        self._machine_trace = machine.run(ticks)

        scheduler = BayesPerfScheduler(self.catalog)
        schedule = scheduler.build(list(self.registered_events))
        self._sampler = MultiplexedSampler(
            self.catalog,
            schedule,
            noise=self.noise,
            samples_per_tick=self.samples_per_tick,
            seed=self.seed + 1,
        )
        self._sampled = self._sampler.sample(self._machine_trace)
        self._engine = BayesPerfEngine(
            self.catalog, list(self.registered_events), **self.engine_kwargs
        )
        self._tick = 0
        self._attached = True

    def enable(self) -> None:
        """Start counting (mirrors ``PERF_EVENT_IOC_ENABLE``)."""
        if not self._attached:
            raise ShimError("attach() must be called before enable()")
        self._enabled = True

    def disable(self) -> None:
        """Stop counting."""
        self._enabled = False

    @property
    def remaining_ticks(self) -> int:
        if not self._attached or self._machine_trace is None:
            return 0
        return len(self._machine_trace) - self._tick

    # -- data path ------------------------------------------------------------

    def step(self, ticks: int = 1) -> int:
        """Advance the target by *ticks* quanta, running sampling + inference.

        Returns the number of quanta actually processed (bounded by the end of
        the attached workload run).
        """
        if not self._enabled:
            raise ShimError("enable() must be called before step()")
        if ticks <= 0:
            raise ValueError("ticks must be positive")
        processed = 0
        assert self._engine is not None
        for _ in range(ticks):
            if self._tick >= len(self._sampled.records):
                break
            record = self._sampled.records[self._tick]
            self.kernel_buffer.push(record)
            # The engine (accelerator in the paper) drains the kernel buffer.
            drained = self.kernel_buffer.pop()
            if drained is not None:
                report = self._engine.process_record(drained)
                self.user_buffer.push(report)
                for event, estimate in report.estimates.items():
                    self._latest[event] = estimate
            self._tick += 1
            processed += 1
        return processed

    def read(self, handle: PerfEventHandle) -> EventEstimate:
        """Latest posterior estimate for the handle's event."""
        if handle.fd not in self._handles:
            raise ShimError(f"unknown handle fd={handle.fd}")
        if handle.event not in self._latest:
            raise ShimError("no samples processed yet; call step() first")
        return self._latest[handle.event]

    def read_value(self, handle: PerfEventHandle) -> float:
        """Latest posterior mean (what a plain perf user would read)."""
        return self.read(handle).mean

    def poll_reports(self) -> List[PosteriorReport]:
        """Drain every posterior report currently buffered for the user."""
        return self.user_buffer.drain()

    def close(self) -> None:
        """Release all handles and detach."""
        self._handles.clear()
        self._enabled = False
        self._attached = False
        self._latest.clear()
