"""The BayesPerf correction engine.

For every scheduler time slice the engine assembles a factor graph over the
monitored events:

* a **Student-t observation factor** per event measured in the slice, built
  from that slice's PMI sub-samples (§4.2);
* a **soft linear-constraint factor** per microarchitectural invariant
  relating the monitored events (§4, "Statistical Dependencies");
* a **temporal prior** carrying the previous slice's posterior forward — the
  ``Pr(e_b^t | e_b^{t-1}, e_a^t)`` chaining of §3.

Inference runs Expectation Propagation (Alg. 1) with the slice's observation
factors and each connected group of constraints as EP sites; tilted moments
are computed analytically by default or by MCMC (the accelerator's workload)
when ``moment_estimator="mcmc"``.  All inference happens in a per-event
normalised space so that counts spanning many orders of magnitude stay well
conditioned.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.events.catalog import EventCatalog
from repro.fg.compiled import CompiledEPKernel, compile_factor_graph
from repro.fg.distributions import StudentT
from repro.fg.ep import EPSite, ExpectationPropagation
from repro.fg.factors import (
    Factor,
    GaussianObservation,
    LinearConstraintFactor,
    StudentTObservation,
)
from repro.fg.gaussian import GaussianDensity
from repro.fg.graph import FactorGraph
from repro.invariants.library import InvariantLibrary, standard_invariants
from repro.core.posterior import EventEstimate, PosteriorReport
from repro.pmu.sampling import SampledTrace, SamplingRecord
from repro.pmu.traces import EstimateTrace


@dataclass
class EngineState:
    """Snapshot of one monitoring run's temporal state.

    A :class:`BayesPerfEngine` carries state between consecutive slices (the
    previous posterior means, the per-event normalisation scales, the tick
    counter and — for MCMC moment estimation — the RNG stream).  Capturing
    that state lets one engine instance serve many interleaved monitoring
    runs — the fleet worker pool checkpoints a host's state after each batch
    and restores it before the next, instead of constructing a fresh engine
    per host.
    """

    prior_mean: Dict[str, Optional[float]] = field(default_factory=dict)
    scale: Dict[str, float] = field(default_factory=dict)
    tick: int = 0
    rng_state: Optional[Dict] = None


@dataclass
class _PreparedSlice:
    """One record's slice-local model, built before (batched) inference.

    Captures everything :meth:`BayesPerfEngine.process_record` derives from
    the engine's temporal state *before* running EP, so a batch of slices
    from different monitoring runs can be prepared sequentially and then
    solved in one vectorized kernel call.
    """

    record: SamplingRecord
    #: Measured events, in record order.  Doubles as the graph-structure
    #: signature: which events were measured fully determines the slice's
    #: factor-graph shape (the constraint topology is fixed per engine).
    measured: Tuple[str, ...]
    site_lists: List[Tuple[str, List[Factor]]]
    prior: GaussianDensity
    scale: Dict[str, float]
    tick: int
    rng_state: Optional[Dict]
    state: Optional[EngineState]


class BayesPerfEngine:
    """Turns multiplexed counter samples into posterior event estimates.

    Parameters
    ----------
    catalog:
        Event catalog of the monitored CPU.
    events:
        Events the monitoring application registered.  The catalog's fixed
        events are always added (they are measured for free).
    library:
        Invariant library; defaults to the standard one.
    observation_model:
        ``"student_t"`` (paper, §4.2) or ``"gaussian"`` (ablation).
    moment_estimator:
        ``"analytic"`` or ``"mcmc"`` tilted-moment computation inside EP.
    drift:
        Relative standard deviation of the temporal prior: how much an event
        is expected to change between consecutive slices.
    min_relative_sigma:
        Floor on the relative uncertainty assigned to an observation.
    relation_tolerance_scale:
        Multiplier on every relation's tolerance (ablation knob).
    ep_max_iterations, ep_damping, mcmc_samples, seed:
        EP and MCMC controls.
    use_compiled_kernel:
        Route analytic-estimator slices through the vectorized
        :class:`~repro.fg.compiled.CompiledEPKernel` (compiled graph
        structures are cached per measured-event signature, alongside the
        catalog and schedule caches).  The reference
        :class:`~repro.fg.ep.ExpectationPropagation` remains the fallback
        and always serves the MCMC estimator.  Disable for A/B comparison
        against the reference loop.
    """

    def __init__(
        self,
        catalog: EventCatalog,
        events: Sequence[str],
        *,
        library: Optional[InvariantLibrary] = None,
        observation_model: str = "student_t",
        moment_estimator: str = "analytic",
        drift: float = 0.25,
        min_relative_sigma: float = 0.02,
        relation_tolerance_scale: float = 1.0,
        ep_max_iterations: int = 8,
        ep_damping: float = 1.0,
        mcmc_samples: int = 300,
        use_intensity_chain: bool = True,
        use_compiled_kernel: bool = True,
        seed: int = 0,
    ) -> None:
        if observation_model not in ("student_t", "gaussian"):
            raise ValueError(f"unknown observation model {observation_model!r}")
        if drift <= 0:
            raise ValueError("drift must be positive")
        if min_relative_sigma <= 0:
            raise ValueError("min_relative_sigma must be positive")
        if relation_tolerance_scale <= 0:
            raise ValueError("relation_tolerance_scale must be positive")

        self.catalog = catalog
        monitored = list(dict.fromkeys(events))
        fixed = [spec.name for spec in catalog.fixed_events]
        #: Events reported to the user: the registered ones plus fixed counters.
        self.monitored_events: Tuple[str, ...] = tuple(
            monitored + [f for f in fixed if f not in monitored]
        )
        self.library = library if library is not None else standard_invariants()
        # The model reasons over every event any catalog invariant touches;
        # events that are never measured become latent variables whose values
        # are inferred jointly with the monitored ones.
        self.relations = self.library.for_catalog(catalog)
        latent: List[str] = []
        for relation in self.relations:
            for event in relation.events:
                if event not in self.monitored_events and event not in latent:
                    latent.append(event)
        self.events: Tuple[str, ...] = tuple(self.monitored_events) + tuple(latent)
        self.observation_model = observation_model
        self.moment_estimator = moment_estimator
        self.drift = drift
        self.min_relative_sigma = min_relative_sigma
        self.relation_tolerance_scale = relation_tolerance_scale
        self.ep_max_iterations = ep_max_iterations
        self.ep_damping = ep_damping
        self.mcmc_samples = mcmc_samples
        self.use_intensity_chain = use_intensity_chain
        self.use_compiled_kernel = use_compiled_kernel
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self.name = "bayesperf"

        self._relation_groups = self._group_relations()
        #: Compiled kernels per measured-event signature (``None`` marks a
        #: signature that failed to compile and should use reference EP).
        self._kernel_cache: Dict[Tuple[str, ...], Optional[CompiledEPKernel]] = {}
        self.reset()

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Forget all temporal state (start of a new monitoring run).

        The RNG is re-seeded too, so two runs over the same records produce
        identical results even with ``moment_estimator="mcmc"``.
        """
        self._prior_mean: Dict[str, Optional[float]] = {event: None for event in self.events}
        self._scale: Dict[str, float] = {event: 1.0 for event in self.events}
        self._tick = 0
        self._rng = np.random.default_rng(self._seed)

    def snapshot(self) -> EngineState:
        """Capture the temporal state of the current monitoring run."""
        return EngineState(
            prior_mean=dict(self._prior_mean),
            scale=dict(self._scale),
            tick=self._tick,
            rng_state=self._rng.bit_generator.state,
        )

    def restore(self, state: EngineState) -> None:
        """Resume a monitoring run from a previously captured snapshot.

        Unknown events in the snapshot are rejected: a snapshot can only be
        restored into an engine built for the same (catalog, event-set) key.
        """
        unknown = [event for event in state.prior_mean if event not in self._prior_mean]
        if unknown:
            raise ValueError(f"snapshot mentions events unknown to this engine: {unknown}")
        self.reset()
        self._prior_mean.update(state.prior_mean)
        self._scale.update(state.scale)
        self._tick = state.tick
        if state.rng_state is not None:
            self._rng.bit_generator.state = state.rng_state

    # -- construction helpers -------------------------------------------------

    def _group_relations(self) -> Tuple[Tuple[int, ...], ...]:
        """Indices of relations grouped into connected components (EP sites)."""
        if not self.relations:
            return ()
        parent = list(range(len(self.relations)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        event_to_first: Dict[str, int] = {}
        for index, relation in enumerate(self.relations):
            for event in relation.events:
                if event in event_to_first:
                    union(index, event_to_first[event])
                else:
                    event_to_first[event] = index
        groups: Dict[int, List[int]] = {}
        for index in range(len(self.relations)):
            groups.setdefault(find(index), []).append(index)
        return tuple(tuple(members) for members in groups.values())

    def _observation_summaries(self, record: SamplingRecord) -> Dict[str, StudentT]:
        summaries: Dict[str, StudentT] = {}
        for event, samples in record.samples.items():
            if event not in self.events:
                continue
            total = float(np.sum(samples))
            n = len(samples)
            if n >= 2:
                # The quantum total is the sum of the sub-samples; its
                # uncertainty follows from the sub-sample scatter (§4.2).
                std = float(np.std(samples, ddof=1)) * math.sqrt(n)
            else:
                std = abs(total) * 0.05
            scale = max(std / math.sqrt(n), abs(total) * self.min_relative_sigma, 1e-9)
            summaries[event] = StudentT(loc=total, scale=scale, df=float(max(n - 1, 1)))
        return summaries

    def _ensure_scales(self, observations: Mapping[str, StudentT]) -> None:
        """Initialise or refresh the per-event normalisation scales.

        Observed events are always rescaled to their current measured
        magnitude so that a previous bad estimate can never make a fresh
        observation numerically irrelevant.
        """
        observed_values = [abs(obs.loc) for obs in observations.values() if abs(obs.loc) > 0]
        fallback = float(np.median(observed_values)) if observed_values else 1.0
        for event in self.events:
            prior = self._prior_mean[event]
            if event in observations and abs(observations[event].loc) > 0:
                self._scale[event] = max(abs(observations[event].loc), 1e-9)
            elif prior is not None and prior > 0:
                self._scale[event] = prior
            elif self._scale[event] <= 0 or self._scale[event] == 1.0:
                self._scale[event] = max(fallback, 1e-9)

    def _intensity_ratio(self, observations: Mapping[str, StudentT]) -> float:
        """Common-mode activity change since the previous slice (§3 chaining).

        Events measured in this slice that also have an estimate from the
        previous slice (always including the fixed counters) vote on how much
        the overall activity level moved; the median ratio is used to advance
        the temporal prior of every event that was *not* measured.
        """
        if not self.use_intensity_chain:
            return 1.0
        ratios = []
        for event, summary in observations.items():
            previous = self._prior_mean.get(event)
            if previous is not None and previous > 0 and summary.loc > 0:
                ratios.append(summary.loc / previous)
        if not ratios:
            return 1.0
        ratio = float(np.median(ratios))
        return float(min(max(ratio, 0.2), 5.0))

    def _build_factors(
        self, observations: Mapping[str, StudentT]
    ) -> Tuple[List[Factor], List[List[Factor]]]:
        """Observation factors and per-group constraint factors (normalised)."""
        observation_factors: List[Factor] = []
        for event, summary in observations.items():
            scale = self._scale[event]
            loc = summary.loc / scale
            sigma = max(summary.scale / scale, 1e-9)
            if self.observation_model == "student_t":
                observation_factors.append(
                    StudentTObservation(
                        name=f"obs::{event}",
                        variable=event,
                        distribution=StudentT(loc=loc, scale=sigma, df=summary.df),
                    )
                )
            else:
                observation_factors.append(
                    GaussianObservation(name=f"obs::{event}", variable=event, observed=loc, sigma=sigma)
                )

        constraint_groups: List[List[Factor]] = []
        for group in self._relation_groups:
            factors: List[Factor] = []
            for index in group:
                relation = self.relations[index]
                coefficients = {
                    event: coef * self._scale[event]
                    for event, coef in relation.coefficients.items()
                }
                magnitude = sum(abs(value) for value in coefficients.values())
                sigma = max(
                    relation.tolerance * self.relation_tolerance_scale * magnitude, 1e-9
                )
                factors.append(
                    LinearConstraintFactor(
                        name=f"rel::{relation.name}",
                        coefficients=coefficients,
                        sigma=sigma,
                        description=relation.description,
                    )
                )
            constraint_groups.append(factors)
        return observation_factors, constraint_groups

    def _build_prior(self, intensity_ratio: float = 1.0) -> GaussianDensity:
        """Temporal prior over all events in normalised space.

        The previous slice's posterior mean, advanced by the common-mode
        intensity ratio, becomes the prior mean; its spread is the relative
        ``drift`` the workload is expected to exhibit between slices.
        """
        means: Dict[str, float] = {}
        variances: Dict[str, float] = {}
        for event in self.events:
            prior = self._prior_mean[event]
            if prior is not None and prior > 0:
                means[event] = prior * intensity_ratio / self._scale[event]
                variances[event] = (self.drift * means[event] + 1e-6) ** 2
            else:
                # Nothing known yet: a broad prior centred on the event's scale.
                means[event] = 1.0
                variances[event] = 25.0
        return GaussianDensity.diagonal(means, variances)

    # -- inference -------------------------------------------------------------

    def _site_factor_lists(
        self,
        observation_factors: List[Factor],
        constraint_groups: List[List[Factor]],
    ) -> List[Tuple[str, List[Factor]]]:
        """Named EP site partition of one slice's factors (in site order)."""
        site_lists: List[Tuple[str, List[Factor]]] = []
        if observation_factors:
            site_lists.append(("slice-observations", observation_factors))
        for group_index, factors in enumerate(constraint_groups):
            if factors:
                site_lists.append((f"constraints-{group_index}", factors))
        return site_lists

    def _assemble_graph(
        self, site_lists: List[Tuple[str, List[Factor]]]
    ) -> Tuple[FactorGraph, List[EPSite]]:
        """Materialise the FactorGraph + EPSite objects for one slice.

        Only needed on a kernel-cache miss (to compile the structure) and on
        the reference-EP fallback; the compiled hot path binds factor
        objects directly.
        """
        graph = FactorGraph(variables=self.events)
        sites: List[EPSite] = []
        for name, factors in site_lists:
            for factor in factors:
                graph.add_factor(factor)
            sites.append(EPSite(name=name, factor_names=tuple(f.name for f in factors)))
        return graph, sites

    def _compiled_kernel(
        self,
        signature: Tuple[str, ...],
        site_lists: List[Tuple[str, List[Factor]]],
    ) -> Optional[CompiledEPKernel]:
        """Cached compiled kernel for this slice's graph structure.

        The structure is fully determined by which monitored events the
        slice measured (the constraint topology is fixed per engine), so
        kernels are cached per measured-event signature — one compilation
        per schedule rotation position.
        """
        if not (self.use_compiled_kernel and self.moment_estimator == "analytic"):
            return None
        try:
            return self._kernel_cache[signature]
        except KeyError:
            pass
        graph, sites = self._assemble_graph(site_lists)
        structure = compile_factor_graph(graph, sites, variables=self.events)
        kernel = (
            CompiledEPKernel(
                structure,
                damping=self.ep_damping,
                max_iterations=self.ep_max_iterations,
            )
            if structure is not None
            else None
        )
        self._kernel_cache[signature] = kernel
        return kernel

    def _solve_reference(
        self,
        site_lists: List[Tuple[str, List[Factor]]],
        prior: GaussianDensity,
    ) -> Tuple[Dict[str, float], Dict[str, float], int, bool]:
        """Run the reference EP loop (MCMC estimator, or kernel fallback)."""
        graph, sites = self._assemble_graph(site_lists)
        ep = ExpectationPropagation(
            graph,
            sites,
            prior,
            moment_estimator=self.moment_estimator,
            damping=self.ep_damping,
            max_iterations=self.ep_max_iterations,
            mcmc_samples=self.mcmc_samples,
            rng=self._rng,
        )
        result = ep.run()
        return result.posterior.mean(), result.posterior.variance(), result.iterations, result.converged

    def _prepare_slice(self, record: SamplingRecord) -> _PreparedSlice:
        """Advance the temporal state and build one slice's factors + prior."""
        observations = self._observation_summaries(record)
        intensity_ratio = self._intensity_ratio(observations)
        self._ensure_scales(observations)
        observation_factors, constraint_groups = self._build_factors(observations)
        prior = self._build_prior(intensity_ratio)
        return _PreparedSlice(
            record=record,
            measured=tuple(observations),
            site_lists=self._site_factor_lists(observation_factors, constraint_groups),
            prior=prior,
            scale=dict(self._scale),
            tick=self._tick,
            rng_state=self._rng.bit_generator.state,
            state=None,
        )

    def _finalize(
        self,
        prepared: _PreparedSlice,
        means: Mapping[str, float],
        variances: Mapping[str, float],
        iterations: int,
        converged: bool,
    ) -> Tuple[PosteriorReport, EngineState]:
        """Turn one slice's posterior into a report + successor state."""
        report = PosteriorReport(
            tick=prepared.record.tick,
            measured_events=prepared.measured,
            ep_iterations=iterations,
            ep_converged=converged,
        )
        prior_mean: Dict[str, Optional[float]] = {}
        for event in self.events:
            scale = prepared.scale[event]
            mean = max(means[event] * scale, 0.0)
            std = math.sqrt(max(variances[event], 0.0)) * scale
            if event in self.monitored_events:
                report.estimates[event] = EventEstimate(event=event, mean=mean, std=std)
            # The temporal state for the next slice (latent events too).
            prior_mean[event] = max(mean, 1e-9)
        state = EngineState(
            prior_mean=prior_mean,
            scale=prepared.scale,
            tick=prepared.tick + 1,
            rng_state=prepared.rng_state,
        )
        return report, state

    def process_record(self, record: SamplingRecord) -> PosteriorReport:
        """Infer the posterior for one scheduler time slice."""
        prepared = self._prepare_slice(record)
        if prepared.site_lists:
            kernel = self._compiled_kernel(prepared.measured, prepared.site_lists)
            if kernel is not None:
                binding = kernel.structure.bind([f for _, f in prepared.site_lists])
                result = kernel.run([binding], [prepared.prior])
                means: Mapping[str, float] = result.mean_dict(0)
                variances: Mapping[str, float] = result.variance_dict(0)
                iterations = int(result.iterations[0])
                converged = bool(result.converged[0])
            else:
                means, variances, iterations, converged = self._solve_reference(
                    prepared.site_lists, prepared.prior
                )
        else:
            means = prepared.prior.mean()
            variances = prepared.prior.variance()
            iterations = 0
            converged = True

        report, state = self._finalize(prepared, means, variances, iterations, converged)
        # process_record mutates the engine in place; restore() of the
        # successor state is bit-identical to this (the worker pool relies
        # on the equivalence of both paths).
        self._prior_mean.update(state.prior_mean)
        self._tick = state.tick
        return report

    def process_batch(
        self, items: Sequence[Tuple[Optional[EngineState], SamplingRecord]]
    ) -> List[Tuple[PosteriorReport, EngineState]]:
        """Solve many independent slices in vectorized batches.

        Each item pairs a monitoring run's temporal state (``None`` for a
        fresh run) with its next record.  Slices are prepared sequentially
        (the cheap, state-dependent part), grouped by graph-structure
        signature, and every group is solved in one
        :meth:`CompiledEPKernel.run` call.  Returns, in input order, each
        slice's report and successor state — exactly what
        ``restore(); process_record(); snapshot()`` would produce, slice for
        slice, bit for bit.
        """
        items = list(items)
        if not items:
            return []
        if not (self.use_compiled_kernel and self.moment_estimator == "analytic"):
            # Reference path (e.g. the MCMC estimator): per-slice solves.
            results: List[Tuple[PosteriorReport, EngineState]] = []
            for state, record in items:
                self.restore(state) if state is not None else self.reset()
                report = self.process_record(record)
                results.append((report, self.snapshot()))
            return results

        prepared: List[_PreparedSlice] = []
        for state, record in items:
            self.restore(state) if state is not None else self.reset()
            slice_ = self._prepare_slice(record)
            slice_.state = state
            prepared.append(slice_)

        outputs: List[Optional[Tuple[PosteriorReport, EngineState]]] = [None] * len(items)
        groups: Dict[Tuple[str, ...], List[int]] = {}
        for index, slice_ in enumerate(prepared):
            groups.setdefault(slice_.measured, []).append(index)

        for signature, indices in groups.items():
            first = prepared[indices[0]]
            if not first.site_lists:
                for index in indices:
                    slice_ = prepared[index]
                    outputs[index] = self._finalize(
                        slice_, slice_.prior.mean(), slice_.prior.variance(), 0, True
                    )
                continue
            kernel = self._compiled_kernel(signature, first.site_lists)
            if kernel is None:
                # Non-compilable structure: reference EP per slice.
                for index in indices:
                    slice_ = prepared[index]
                    self.restore(slice_.state) if slice_.state is not None else self.reset()
                    outputs[index] = (self.process_record(slice_.record), self.snapshot())
                continue
            bindings = [
                kernel.structure.bind([f for _, f in prepared[index].site_lists])
                for index in indices
            ]
            result = kernel.run(bindings, [prepared[index].prior for index in indices])
            for position, index in enumerate(indices):
                outputs[index] = self._finalize(
                    prepared[index],
                    result.mean_dict(position),
                    result.variance_dict(position),
                    int(result.iterations[position]),
                    bool(result.converged[position]),
                )
        if any(output is None for output in outputs):
            raise RuntimeError("process_batch left a slice unsolved (internal error)")
        return outputs  # type: ignore[return-value]

    def correct(self, sampled: SampledTrace) -> EstimateTrace:
        """Correct a full sampled trace, returning per-tick estimates."""
        self.reset()
        estimates = EstimateTrace(method=self.name)
        for record in sampled.records:
            report = self.process_record(record)
            estimates.append(report.means(), report.stds())
        return estimates

    def reports(self, sampled: SampledTrace) -> List[PosteriorReport]:
        """Full posterior reports (including uncertainty) for a sampled trace."""
        self.reset()
        return [self.process_record(record) for record in sampled.records]
