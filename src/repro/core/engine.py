"""The BayesPerf correction engine.

For every scheduler time slice the engine assembles a factor graph over the
monitored events:

* a **Student-t observation factor** per event measured in the slice, built
  from that slice's PMI sub-samples (§4.2);
* a **soft linear-constraint factor** per microarchitectural invariant
  relating the monitored events (§4, "Statistical Dependencies");
* a **temporal prior** carrying the previous slice's posterior forward — the
  ``Pr(e_b^t | e_b^{t-1}, e_a^t)`` chaining of §3.

Inference runs Expectation Propagation (Alg. 1) with the slice's observation
factors and each connected group of constraints as EP sites; tilted moments
are computed analytically by default or by MCMC (the accelerator's workload).
All inference happens in a per-event normalised space so that counts spanning
many orders of magnitude stay well conditioned.

The hot path is **array-native end to end**: per-slice observation summaries
are plain ndarrays (no Student-t objects), site blocks come out of the
signature-cached :class:`~repro.fg.compiled.CompiledBinder` (no factor
objects), and batches solve through
:meth:`~repro.fg.compiled.CompiledEPKernel.run_stacked` or the batched MCMC
estimator.  Every fast path keeps a reference twin — the object-walking
:class:`~repro.fg.ep.ExpectationPropagation` loop for the analytic kernel,
:class:`~repro.fg.mcmc.ReferenceMCMC` for the batched sampler — selectable
with ``use_compiled_kernel=False`` so differential tests can pin the pairs
together.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.events.catalog import EventCatalog
from repro.fg.compiled import (
    CompiledBinder,
    CompiledEPKernel,
    ConstraintSiteBinder,
    ObservationSiteBinder,
    compile_factor_graph,
)
from repro.fg.distributions import StudentT, student_t_moment_variance
from repro.fg.megabatch import (
    KernelExecSpec,
    kernel_exec_from_env,
    bind_bucketed_observation,
    observation_certified,
    padding_slots,
    run_lane_partitioned,
)
from repro.fg.ep import EPSite, ExpectationPropagation
from repro.fg.factors import (
    Factor,
    GaussianObservation,
    LinearConstraintFactor,
    StudentTObservation,
)
from repro.fg.gaussian import GaussianDensity
from repro.fg.graph import FactorGraph
from repro.fg.mcmc import ChainTrace, StudentTTail
from repro.fg.registry import estimator_names, get_estimator
from repro.invariants.library import InvariantLibrary, standard_invariants
from repro.core.posterior import EventEstimate, PosteriorReport
from repro.pmu.sampling import SampledTrace, SamplingRecord
from repro.pmu.traces import EstimateTrace

#: All registered moment estimators (the :mod:`repro.fg.registry` the
#: samplers and their reference twins self-register into; "mcmc" = per-site
#: tilted MCMC inside the EP loop, the paper's accelerator workload).
#: Kept as a module attribute for backward compatibility — the registry is
#: the source of truth.
KNOWN_ESTIMATORS = estimator_names()


@dataclass
class EngineState:
    """Snapshot of one monitoring run's temporal state.

    A :class:`BayesPerfEngine` carries state between consecutive slices (the
    previous posterior means, the per-event normalisation scales, the tick
    counter and — for MCMC moment estimation — the RNG stream).  Capturing
    that state lets one engine instance serve many interleaved monitoring
    runs — the fleet worker pool checkpoints a host's state after each batch
    and restores it before the next, instead of constructing a fresh engine
    per host.
    """

    prior_mean: Dict[str, Optional[float]] = field(default_factory=dict)
    scale: Dict[str, float] = field(default_factory=dict)
    tick: int = 0
    rng_state: Optional[Dict] = None


@dataclass(frozen=True)
class ObservationSummaries:
    """Array-native per-slice observation summaries (§4.2).

    One row per measured event, in record order: the quantum total, its
    Student-t scale and the degrees of freedom.  Replaces the historical
    ``Dict[str, StudentT]`` so batch preparation never materialises
    distribution objects; the ``events`` tuple doubles as the slice's
    graph-structure signature.
    """

    events: Tuple[str, ...]
    loc: np.ndarray
    scale: np.ndarray
    df: np.ndarray

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class _PreparedSlice:
    """One record's slice-local model, built before (batched) inference.

    Captures everything :meth:`BayesPerfEngine.process_record` derives from
    the engine's temporal state *before* running inference, as plain
    ndarrays, so a batch of slices from different monitoring runs can be
    prepared sequentially and then solved in one vectorized kernel call.
    """

    record: SamplingRecord
    #: Measured events, in record order.  Doubles as the graph-structure
    #: signature: which events were measured fully determines the slice's
    #: factor-graph shape (the constraint topology is fixed per engine).
    measured: Tuple[str, ...]
    summaries: ObservationSummaries
    #: Normalised projected observation moments, ``(E,)`` each.
    obs_mean: np.ndarray
    obs_scale: np.ndarray
    obs_variance: np.ndarray
    #: Per-event normalisation scales over every engine variable, ``(n,)``.
    scales_vec: np.ndarray
    #: Temporal prior in normalised space, ``(n,)`` each.
    prior_mean_vec: np.ndarray
    prior_var_vec: np.ndarray
    scale: Dict[str, float]
    tick: int
    rng_state: Optional[Dict]
    #: Per-record seed for the batched MCMC estimator's chains.
    mcmc_seed: int = 0
    state: Optional[EngineState] = None


class BayesPerfEngine:
    """Turns multiplexed counter samples into posterior event estimates.

    Parameters
    ----------
    catalog:
        Event catalog of the monitored CPU.
    events:
        Events the monitoring application registered.  The catalog's fixed
        events are always added (they are measured for free).
    library:
        Invariant library; defaults to the standard one.
    observation_model:
        ``"student_t"`` (paper, §4.2) or ``"gaussian"`` (ablation).
    moment_estimator:
        Any name registered in :mod:`repro.fg.registry`: ``"analytic"``
        (exact Gaussian projections), ``"mcmc"`` (per-site tilted-moment
        sampling inside the EP loop — the accelerator's workload, batched
        over records on the compiled kernel's buffers) or
        ``"batched-mcmc"`` (full-posterior coupled-chain sampling through
        the compiled kernel's buffers, vectorized across a batch).  Names
        are validated against the registry (unknown names raise, listing
        the registered estimators) and each entry supplies the engine's
        implementation classes and adaptation default; the engine's solve
        wiring currently drives these three built-in estimator shapes.
    mcmc_adapt:
        Per-record proposal-scale adaptation during burn-in for the sampled
        estimators.  ``None`` keeps each estimator's default: *on* for the
        per-site ``"mcmc"`` sampler, *off* for ``"batched-mcmc"`` (whose
        golden-trace numerics predate adaptation).
    chain_recorder:
        Optional :class:`~repro.fg.mcmc.ChainTrace` capturing one record
        per (slice, EP iteration, site) chain the ``"mcmc"`` estimator
        runs; serialise it with :mod:`repro.fleet.tracefile` and feed it to
        the :mod:`repro.accelerator` co-simulation.
    observer:
        Optional :class:`~repro.obs.Observer`.  When present the engine
        emits ``kernel.compile``/``kernel.bind``/``kernel.solve`` spans and
        kernel-cache hit/miss counters; when ``None`` (the default) the hot
        path is untouched.
    drift:
        Relative standard deviation of the temporal prior: how much an event
        is expected to change between consecutive slices.
    min_relative_sigma:
        Floor on the relative uncertainty assigned to an observation.
    relation_tolerance_scale:
        Multiplier on every relation's tolerance (ablation knob).
    ep_max_iterations, ep_damping, mcmc_samples, mcmc_burn_in, seed:
        EP and MCMC controls.
    megabatch:
        Merge *all* eligible measured-event signatures of one
        :meth:`process_batch` call into a single canonical full-width
        kernel solve (:mod:`repro.fg.megabatch`): padded lanes carry exact
        zeros so the mega-batched posteriors are bit-identical to the
        per-signature batched ones — only the per-call dispatch overhead
        changes.  Off by default; heterogeneous fleets turn it on via
        ``EstimatorSpec(megabatch=True)``.
    kernel_exec:
        Optional :class:`~repro.fg.megabatch.KernelExecSpec` spreading the
        batched kernel across threads (``partition="lane"`` chunks the
        record axis inside one solve; ``partition="signature"`` runs
        independent signature groups concurrently).  Partitions are fixed
        functions of the workload shape, so any thread count is
        bit-identical to ``threads=1``.  When ``None``, the
        ``REPRO_KERNEL_THREADS`` environment variable supplies a default.
    use_compiled_kernel:
        Route compiled-estimator slices through the vectorized array path
        (:class:`~repro.fg.compiled.CompiledEPKernel` /
        :class:`~repro.fg.mcmc.BatchedMCMC`; compiled structures and
        binders are cached per measured-event signature).  Disable to run
        each estimator's reference twin instead — the object-walking
        :class:`~repro.fg.ep.ExpectationPropagation` loop for
        ``"analytic"``, :class:`~repro.fg.mcmc.ReferenceMCMC` for
        ``"batched-mcmc"``, :class:`~repro.fg.ep.ReferenceSiteMCMC` for
        ``"mcmc"`` — for differential A/B comparison.
    """

    def __init__(
        self,
        catalog: EventCatalog,
        events: Sequence[str],
        *,
        library: Optional[InvariantLibrary] = None,
        observation_model: str = "student_t",
        moment_estimator: str = "analytic",
        drift: float = 0.25,
        min_relative_sigma: float = 0.02,
        relation_tolerance_scale: float = 1.0,
        ep_max_iterations: int = 8,
        ep_damping: float = 1.0,
        mcmc_samples: int = 300,
        mcmc_burn_in: int = 200,
        mcmc_adapt: Optional[bool] = None,
        chain_recorder: Optional[ChainTrace] = None,
        observer=None,
        use_intensity_chain: bool = True,
        use_compiled_kernel: bool = True,
        megabatch: bool = False,
        kernel_exec: Optional[KernelExecSpec] = None,
        seed: int = 0,
    ) -> None:
        if observation_model not in ("student_t", "gaussian"):
            raise ValueError(f"unknown observation model {observation_model!r}")
        # Registry resolution: raises for unknown names, listing the
        # registered estimators.
        self._estimator = get_estimator(moment_estimator)
        if self._estimator.baseline:
            raise ValueError(
                f"{moment_estimator!r} is a baseline correction method, not a "
                f"moment estimator; run it through the scenario-grid comparison "
                f"(RunSpec.baselines) instead"
            )
        if drift <= 0:
            raise ValueError("drift must be positive")
        if min_relative_sigma <= 0:
            raise ValueError("min_relative_sigma must be positive")
        if relation_tolerance_scale <= 0:
            raise ValueError("relation_tolerance_scale must be positive")

        self.catalog = catalog
        monitored = list(dict.fromkeys(events))
        fixed = [spec.name for spec in catalog.fixed_events]
        #: Events reported to the user: the registered ones plus fixed counters.
        self.monitored_events: Tuple[str, ...] = tuple(
            monitored + [f for f in fixed if f not in monitored]
        )
        self.library = library if library is not None else standard_invariants()
        # The model reasons over every event any catalog invariant touches;
        # events that are never measured become latent variables whose values
        # are inferred jointly with the monitored ones.
        self.relations = self.library.for_catalog(catalog)
        latent: List[str] = []
        for relation in self.relations:
            for event in relation.events:
                if event not in self.monitored_events and event not in latent:
                    latent.append(event)
        self.events: Tuple[str, ...] = tuple(self.monitored_events) + tuple(latent)
        self.observation_model = observation_model
        self.moment_estimator = moment_estimator
        self.drift = drift
        self.min_relative_sigma = min_relative_sigma
        self.relation_tolerance_scale = relation_tolerance_scale
        self.ep_max_iterations = ep_max_iterations
        self.ep_damping = ep_damping
        self.mcmc_samples = mcmc_samples
        self.mcmc_burn_in = mcmc_burn_in
        # Estimator-specific adaptation default (from the registry entry).
        self.mcmc_adapt = mcmc_adapt if mcmc_adapt is not None else self._estimator.default_adapt
        self.chain_recorder = chain_recorder
        self._observer = observer
        self.use_intensity_chain = use_intensity_chain
        self.use_compiled_kernel = use_compiled_kernel
        self.megabatch = megabatch
        self.kernel_exec = kernel_exec if kernel_exec is not None else kernel_exec_from_env()
        self._kernel_pool = None
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self.name = "bayesperf"

        self._relation_groups = self._group_relations()
        self._event_slot: Dict[str, int] = {e: i for i, e in enumerate(self.events)}
        #: Compiled kernels per measured-event signature (``None`` marks a
        #: signature that failed to compile and should use reference EP).
        self._kernel_cache: Dict[Tuple[str, ...], Optional[CompiledEPKernel]] = {}
        #: Array-native binders, cached alongside the kernels.
        self._binder_cache: Dict[Tuple[str, ...], CompiledBinder] = {}
        #: Canonical full-width kernel + binder for the mega-batch path
        #: (compiled lazily; ``False`` = not built yet, ``None`` = the
        #: canonical structure does not compile).
        self._mega_cache = False
        self.reset()

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Forget all temporal state (start of a new monitoring run).

        The RNG is re-seeded too, so two runs over the same records produce
        identical results even with an MCMC moment estimator.
        """
        self._prior_mean: Dict[str, Optional[float]] = {event: None for event in self.events}
        self._scale: Dict[str, float] = {event: 1.0 for event in self.events}
        self._tick = 0
        self._rng = np.random.default_rng(self._seed)

    def snapshot(self) -> EngineState:
        """Capture the temporal state of the current monitoring run."""
        return EngineState(
            prior_mean=dict(self._prior_mean),
            scale=dict(self._scale),
            tick=self._tick,
            rng_state=self._rng.bit_generator.state,
        )

    def restore(self, state: EngineState) -> None:
        """Resume a monitoring run from a previously captured snapshot.

        Unknown events in the snapshot are rejected: a snapshot can only be
        restored into an engine built for the same (catalog, event-set) key.
        """
        unknown = [event for event in state.prior_mean if event not in self._prior_mean]
        if unknown:
            raise ValueError(f"snapshot mentions events unknown to this engine: {unknown}")
        self.reset()
        self._prior_mean.update(state.prior_mean)
        self._scale.update(state.scale)
        self._tick = state.tick
        if state.rng_state is not None:
            self._rng.bit_generator.state = state.rng_state

    # -- construction helpers -------------------------------------------------

    def _group_relations(self) -> Tuple[Tuple[int, ...], ...]:
        """Indices of relations grouped into connected components (EP sites)."""
        if not self.relations:
            return ()
        parent = list(range(len(self.relations)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        event_to_first: Dict[str, int] = {}
        for index, relation in enumerate(self.relations):
            for event in relation.events:
                if event in event_to_first:
                    union(index, event_to_first[event])
                else:
                    event_to_first[event] = index
        groups: Dict[int, List[int]] = {}
        for index in range(len(self.relations)):
            groups.setdefault(find(index), []).append(index)
        return tuple(tuple(members) for members in groups.values())

    def _observation_summaries(self, record: SamplingRecord) -> ObservationSummaries:
        """Batched ndarray summaries of one slice's sub-samples (§4.2)."""
        events: List[str] = []
        arrays: List[np.ndarray] = []
        for event, samples in record.samples.items():
            if event in self._event_slot:
                array = np.asarray(samples, dtype=float).reshape(-1)
                if array.size == 0:
                    # A measured event with zero sub-samples is malformed
                    # input (e.g. a truncated trace); fail loudly here
                    # rather than let NaNs poison the temporal chain.
                    raise ValueError(
                        f"record tick {record.tick} has no samples for "
                        f"measured event {event!r}"
                    )
                events.append(event)
                arrays.append(array)
        if not events:
            empty = np.empty(0)
            return ObservationSummaries((), empty, empty.copy(), empty.copy())
        lengths = {array.shape[0] for array in arrays}
        if len(lengths) == 1:
            # Uniform sub-sample counts (the schedule's normal shape): one
            # vectorized pass over the (E, n) sample matrix.
            n = lengths.pop()
            matrix = np.stack(arrays)
            totals = matrix.sum(axis=1)
            if n >= 2:
                # The quantum total is the sum of the sub-samples; its
                # uncertainty follows from the sub-sample scatter (§4.2).
                stds = matrix.std(axis=1, ddof=1) * math.sqrt(n)
            else:
                stds = np.abs(totals) * 0.05
            scales = np.maximum(
                np.maximum(stds / math.sqrt(n), np.abs(totals) * self.min_relative_sigma),
                1e-9,
            )
            dfs = np.full(len(events), float(max(n - 1, 1)))
        else:
            # Ragged sub-sample counts: per-event fallback, same arithmetic.
            totals = np.empty(len(events))
            scales = np.empty(len(events))
            dfs = np.empty(len(events))
            for i, samples in enumerate(arrays):
                count = samples.shape[0]
                total = float(np.sum(samples))
                if count >= 2:
                    std = float(np.std(samples, ddof=1)) * math.sqrt(count)
                else:
                    std = abs(total) * 0.05
                totals[i] = total
                scales[i] = max(
                    std / math.sqrt(count), abs(total) * self.min_relative_sigma, 1e-9
                )
                dfs[i] = float(max(count - 1, 1))
        if record.mux_fraction:
            # Real traces carry perf's t_running/t_enabled bookkeeping: an
            # event that counted only a fraction f of the quantum reports a
            # linearly-scaled total whose sampling noise grows like
            # 1/sqrt(f), so its observation scale widens accordingly.  The
            # simulator leaves mux_fraction empty — synthetic streams take
            # this branch never and keep bit-identical scales.
            for i, event in enumerate(events):
                fraction = record.mux_fraction.get(event)
                if fraction is not None and 0.0 < fraction < 1.0:
                    scales[i] /= math.sqrt(fraction)
        return ObservationSummaries(tuple(events), totals, scales, dfs)

    def _ensure_scales(self, summaries: ObservationSummaries) -> None:
        """Initialise or refresh the per-event normalisation scales.

        Observed events are always rescaled to their current measured
        magnitude so that a previous bad estimate can never make a fresh
        observation numerically irrelevant.
        """
        magnitudes = np.abs(summaries.loc)
        positive = magnitudes[magnitudes > 0]
        fallback = float(np.median(positive)) if positive.size else 1.0
        observed = dict(zip(summaries.events, magnitudes))
        for event in self.events:
            prior = self._prior_mean[event]
            magnitude = observed.get(event, 0.0)
            if magnitude > 0:
                self._scale[event] = max(float(magnitude), 1e-9)
            elif prior is not None and prior > 0:
                self._scale[event] = prior
            elif self._scale[event] <= 0 or self._scale[event] == 1.0:
                self._scale[event] = max(fallback, 1e-9)

    def _intensity_ratio(self, summaries: ObservationSummaries) -> float:
        """Common-mode activity change since the previous slice (§3 chaining).

        Events measured in this slice that also have an estimate from the
        previous slice (always including the fixed counters) vote on how much
        the overall activity level moved; the median ratio is used to advance
        the temporal prior of every event that was *not* measured.
        """
        if not self.use_intensity_chain:
            return 1.0
        ratios = []
        for event, loc in zip(summaries.events, summaries.loc):
            previous = self._prior_mean.get(event)
            if previous is not None and previous > 0 and loc > 0:
                ratios.append(loc / previous)
        if not ratios:
            return 1.0
        ratio = float(np.median(ratios))
        return float(min(max(ratio, 0.2), 5.0))

    def _build_factors(
        self, summaries: ObservationSummaries
    ) -> Tuple[List[Factor], List[List[Factor]]]:
        """Observation factors and per-group constraint factors (normalised).

        The object-level slice model — needed only to compile a new
        signature and on the reference-twin paths; the compiled hot path
        binds the summary arrays directly.
        """
        observation_factors: List[Factor] = []
        for event, loc, sigma, df in zip(
            summaries.events, summaries.loc, summaries.scale, summaries.df
        ):
            scale = self._scale[event]
            loc_norm = loc / scale
            sigma_norm = max(sigma / scale, 1e-9)
            if self.observation_model == "student_t":
                observation_factors.append(
                    StudentTObservation(
                        name=f"obs::{event}",
                        variable=event,
                        distribution=StudentT(loc=loc_norm, scale=sigma_norm, df=float(df)),
                    )
                )
            else:
                observation_factors.append(
                    GaussianObservation(
                        name=f"obs::{event}", variable=event, observed=loc_norm, sigma=sigma_norm
                    )
                )

        constraint_groups: List[List[Factor]] = []
        for group in self._relation_groups:
            factors: List[Factor] = []
            for index in group:
                relation = self.relations[index]
                coefficients = {
                    event: coef * self._scale[event]
                    for event, coef in relation.coefficients.items()
                }
                magnitude = sum(abs(value) for value in coefficients.values())
                sigma = max(
                    relation.tolerance * self.relation_tolerance_scale * magnitude, 1e-9
                )
                factors.append(
                    LinearConstraintFactor(
                        name=f"rel::{relation.name}",
                        coefficients=coefficients,
                        sigma=sigma,
                        description=relation.description,
                    )
                )
            constraint_groups.append(factors)
        return observation_factors, constraint_groups

    def _build_prior_arrays(self, intensity_ratio: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
        """Temporal prior over all events in normalised space, as arrays.

        The previous slice's posterior mean, advanced by the common-mode
        intensity ratio, becomes the prior mean; its spread is the relative
        ``drift`` the workload is expected to exhibit between slices.
        """
        means = np.empty(len(self.events))
        variances = np.empty(len(self.events))
        for i, event in enumerate(self.events):
            prior = self._prior_mean[event]
            if prior is not None and prior > 0:
                mean = prior * intensity_ratio / self._scale[event]
                means[i] = mean
                variances[i] = (self.drift * mean + 1e-6) ** 2
            else:
                # Nothing known yet: a broad prior centred on the event's scale.
                means[i] = 1.0
                variances[i] = 25.0
        return means, variances

    def _prior_density(self, prepared: _PreparedSlice) -> GaussianDensity:
        """The prepared slice's temporal prior as a Gaussian object."""
        means = {e: float(m) for e, m in zip(self.events, prepared.prior_mean_vec)}
        variances = {e: float(v) for e, v in zip(self.events, prepared.prior_var_vec)}
        return GaussianDensity.diagonal(means, variances)

    # -- inference -------------------------------------------------------------

    @property
    def _has_sites(self) -> bool:
        """Whether the engine's graphs ever contain constraint sites."""
        return bool(self._relation_groups)

    def _compiled_path(self) -> bool:
        return self.use_compiled_kernel and self._estimator.compiled_path

    def _site_factor_lists(
        self,
        observation_factors: List[Factor],
        constraint_groups: List[List[Factor]],
    ) -> List[Tuple[str, List[Factor]]]:
        """Named EP site partition of one slice's factors (in site order)."""
        site_lists: List[Tuple[str, List[Factor]]] = []
        if observation_factors:
            site_lists.append(("slice-observations", observation_factors))
        for group_index, factors in enumerate(constraint_groups):
            if factors:
                site_lists.append((f"constraints-{group_index}", factors))
        return site_lists

    def _assemble_graph(
        self, site_lists: List[Tuple[str, List[Factor]]]
    ) -> Tuple[FactorGraph, List[EPSite]]:
        """Materialise the FactorGraph + EPSite objects for one slice.

        Only needed on a kernel-cache miss (to compile the structure) and on
        the reference-twin paths; the compiled hot path binds summary
        arrays directly.
        """
        graph = FactorGraph(variables=self.events)
        sites: List[EPSite] = []
        for name, factors in site_lists:
            for factor in factors:
                graph.add_factor(factor)
            sites.append(EPSite(name=name, factor_names=tuple(f.name for f in factors)))
        return graph, sites

    def _build_binder(
        self, structure, site_names: Sequence[str], measured: Tuple[str, ...]
    ) -> CompiledBinder:
        """Array-native binder for one compiled structure.

        Lowered once per measured-event signature: the observation site's
        slot table plus each constraint group's stacked (unscaled)
        coefficient matrix, in the structure's site-local orderings.
        """
        observation: Optional[ObservationSiteBinder] = None
        constraints: List[ConstraintSiteBinder] = []
        for index, name in enumerate(site_names):
            site = structure.sites[index]
            local = {variable: i for i, variable in enumerate(site.variables)}
            if name == "slice-observations":
                slots = np.array([local[event] for event in measured], dtype=np.intp)
                observation = ObservationSiteBinder(site=index, slots=slots, width=site.width)
            else:
                group = int(name.rsplit("-", 1)[1])
                relations = [self.relations[i] for i in self._relation_groups[group]]
                coefficients = np.zeros((len(relations), site.width))
                tolerances = np.empty(len(relations))
                for row, relation in enumerate(relations):
                    for event, coefficient in relation.coefficients.items():
                        coefficients[row, local[event]] = coefficient
                    tolerances[row] = relation.tolerance * self.relation_tolerance_scale
                constraints.append(
                    ConstraintSiteBinder(
                        site=index,
                        coefficients=coefficients,
                        tolerances=tolerances,
                        width=site.width,
                    )
                )
        return CompiledBinder(
            structure=structure, observation=observation, constraints=tuple(constraints)
        )

    def _compiled_kernel(
        self, prepared: _PreparedSlice
    ) -> Optional[Tuple[CompiledEPKernel, CompiledBinder]]:
        """Cached compiled kernel + binder for this slice's graph structure.

        The structure is fully determined by which monitored events the
        slice measured (the constraint topology is fixed per engine), so
        kernels and their array-native binders are cached per
        measured-event signature — one compilation per schedule rotation
        position.
        """
        if not self._compiled_path():
            return None
        signature = prepared.measured
        observer = self._observer
        try:
            kernel = self._kernel_cache[signature]
            if observer is not None:
                observer.count("kernel.cache.hits")
        except KeyError:
            if observer is not None:
                observer.count("kernel.cache.misses")
            with (
                observer.span("kernel.compile", signature=len(signature))
                if observer is not None
                else nullcontext()
            ):
                observation_factors, constraint_groups = self._build_factors(
                    prepared.summaries
                )
                site_lists = self._site_factor_lists(
                    observation_factors, constraint_groups
                )
                graph, sites = self._assemble_graph(site_lists)
                structure = compile_factor_graph(graph, sites, variables=self.events)
                if structure is None:
                    kernel = None
                else:
                    kernel = CompiledEPKernel(
                        structure,
                        damping=self.ep_damping,
                        max_iterations=self.ep_max_iterations,
                    )
                    self._binder_cache[signature] = self._build_binder(
                        structure, [name for name, _ in site_lists], signature
                    )
            self._kernel_cache[signature] = kernel
        if kernel is None:
            return None
        return kernel, self._binder_cache[signature]

    # -- mega-batching (repro.fg.megabatch) ---------------------------------

    def _megabatch_structure(self) -> Optional[Tuple[CompiledEPKernel, CompiledBinder]]:
        """Canonical full-width kernel + binder for cross-signature solves.

        Within one engine the variable set and constraint topology are
        signature-invariant; only the observation site's width varies.  The
        canonical structure treats *every* engine variable as observed, so
        any signature embeds by scattering its measured lanes and padding
        the rest with exact zeros.  Compiled once per engine, through the
        same ``_build_factors → compile_factor_graph`` path as per-signature
        structures, so constraint-site variable orderings match exactly.
        """
        if self._mega_cache is not False:
            return self._mega_cache
        n = len(self.events)
        # Placeholder summaries: only the factor *types* and variable sets
        # matter for compilation, never the values.
        summaries = ObservationSummaries(
            self.events, np.ones(n), np.ones(n), np.full(n, 3.0)
        )
        observation_factors, constraint_groups = self._build_factors(summaries)
        site_lists = self._site_factor_lists(observation_factors, constraint_groups)
        graph, sites = self._assemble_graph(site_lists)
        structure = compile_factor_graph(graph, sites, variables=self.events)
        if structure is None:
            self._mega_cache = None
        else:
            kernel = CompiledEPKernel(
                structure,
                damping=self.ep_damping,
                max_iterations=self.ep_max_iterations,
            )
            binder = self._build_binder(
                structure, [name for name, _ in site_lists], self.events
            )
            self._mega_cache = (kernel, binder)
        return self._mega_cache

    def _kernel_threads(self) -> "ThreadPoolExecutor":
        """The engine's lazily created kernel thread pool."""
        if self._kernel_pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._kernel_pool = ThreadPoolExecutor(
                max_workers=self.kernel_exec.threads,
                thread_name_prefix="repro-kernel",
            )
        return self._kernel_pool

    def _run_kernel(
        self,
        kernel: CompiledEPKernel,
        stacked,
        prior_precision: np.ndarray,
        prior_shift: np.ndarray,
        certified_sites: Sequence[int] = (),
        site_index_overrides: Optional[Dict[int, np.ndarray]] = None,
        repair_groups: Optional[Sequence[np.ndarray]] = None,
    ):
        """``run_stacked`` with the engine's thread partition applied.

        Lane partitioning chunks the batch axis across the thread pool;
        the PD repair is hoisted ahead of the split and every remaining
        kernel op is per-record, so the result is bit-identical to the
        serial call for any thread count.
        """
        spec = self.kernel_exec
        batch = prior_shift.shape[0]
        if (
            spec is None
            or spec.threads <= 1
            or spec.partition != "lane"
            or batch < spec.threads
        ):
            return kernel.run_stacked(
                stacked, prior_precision, prior_shift, certified_sites,
                site_index_overrides, repair_groups,
            )
        return run_lane_partitioned(
            kernel,
            stacked,
            prior_precision,
            prior_shift,
            certified_sites,
            self._kernel_threads(),
            spec.threads,
            site_index_overrides,
            repair_groups,
        )

    def _megabatch_eligible(
        self, groups: Dict[Tuple[str, ...], List[int]], prepared: List[_PreparedSlice]
    ) -> List[Tuple[str, ...]]:
        """Signatures of this batch that may merge into one canonical solve.

        A group qualifies when it measured at least one event and every
        record's projected observation precision is finite and strictly
        positive — the condition under which skipping the canonical
        observation site's PD probe is bit-identical to the per-signature
        probe (see :func:`repro.fg.megabatch.observation_certified`).
        Merging only ever pays off across *multiple* signatures, so a
        homogeneous batch keeps the plain per-signature path untouched.
        Whether an estimator's batched path supports merging at all is the
        registry's call (``EstimatorEntry.megabatch``).
        """
        if (
            not self.megabatch
            or not self._estimator.megabatch
            or len(groups) < 2
            or self._megabatch_structure() is None
        ):
            return []
        eligible = [
            signature
            for signature, indices in groups.items()
            if signature
            and all(
                observation_certified(prepared[index].obs_variance)
                for index in indices
            )
        ]
        return eligible if len(eligible) >= 2 else []

    def _solve_megabatch(
        self,
        groups: List[Tuple[Tuple[str, ...], List[_PreparedSlice]]],
    ) -> List[Tuple[Mapping[str, float], Mapping[str, float], int, bool]]:
        """Solve several signature groups in one canonical kernel call.

        Records are laid out group-contiguously in one bucketed
        structure-of-arrays layout: the observation site is padded to the
        round's widest signature, populated lanes carry the exact floats
        the per-signature binder would produce, padded lanes carry exact
        zeros scattered onto unmeasured slots via the per-record slot
        table — so the merged solve reproduces every per-signature solve
        bit for bit.  The kernel's PD repair re-probes at the original
        group granularity (``repair_groups``): the Cholesky probe is
        all-or-nothing per call, so merging must not let one group's
        indefinite block change another group's repair.  Returns results
        in the flattened (group-major) record order.
        """
        kernel, binder = self._megabatch_structure()
        flat = [p for _, members in groups for p in members]
        batch, n = len(flat), len(self.events)
        obs_site = binder.observation.site
        observer = self._observer
        with (
            observer.span("kernel.megabind", batch=batch, signatures=len(groups))
            if observer is not None
            else nullcontext()
        ):
            width = max(len(signature) for signature, _ in groups)
            blocks = []
            row = 0
            for signature, members in groups:
                rows = np.arange(row, row + len(members))
                slots = np.array(
                    [self._event_slot[event] for event in signature], dtype=np.intp
                )
                blocks.append(
                    (
                        rows,
                        slots,
                        padding_slots(width, slots, n),
                        np.stack([p.obs_mean for p in members]),
                        np.stack([p.obs_variance for p in members]),
                    )
                )
                row += len(members)
            obs_block = bind_bucketed_observation(width, batch, blocks)
            slot_table = obs_block[2]
            scales = np.stack([p.scales_vec for p in flat])
            stacked: List[Tuple[np.ndarray, np.ndarray]] = [None] * len(  # type: ignore[list-item]
                binder.structure.sites
            )
            stacked[obs_site] = obs_block[:2]
            for constraint in binder.constraints:
                site = binder.structure.sites[constraint.site]
                stacked[constraint.site] = constraint.bind(scales[:, site.index])

            prior_mean = np.stack([p.prior_mean_vec for p in flat])
            prior_var = np.stack([p.prior_var_vec for p in flat])
            prior_precision = np.zeros((batch, n, n))
            diagonal = np.arange(n)
            prior_precision[:, diagonal, diagonal] = 1.0 / prior_var
            prior_shift = prior_mean / prior_var

        with (
            observer.span("kernel.solve", batch=batch, estimator="megabatch")
            if observer is not None
            else nullcontext()
        ):
            result = self._run_kernel(
                kernel,
                stacked,
                prior_precision,
                prior_shift,
                certified_sites=(obs_site,),
                site_index_overrides={obs_site: slot_table},
                repair_groups=[block[0] for block in blocks],
            )
        # ``tolist()`` yields the same binary64 values ``float(...)`` would;
        # bulk extraction just skips the per-element numpy scalar round trip.
        names = result.variables
        means = result.means.tolist()
        variances = result.variances.tolist()
        return [
            (
                dict(zip(names, means[b])),
                dict(zip(names, variances[b])),
                int(result.iterations[b]),
                bool(result.converged[b]),
            )
            for b in range(batch)
        ]

    def _solve_reference(
        self,
        site_lists: List[Tuple[str, List[Factor]]],
        prior: GaussianDensity,
    ) -> Tuple[Dict[str, float], Dict[str, float], int, bool]:
        """Run the reference EP loop (MCMC estimator, or kernel fallback)."""
        graph, sites = self._assemble_graph(site_lists)
        ep = ExpectationPropagation(
            graph,
            sites,
            prior,
            moment_estimator=self.moment_estimator,
            damping=self.ep_damping,
            max_iterations=self.ep_max_iterations,
            mcmc_samples=self.mcmc_samples,
            rng=self._rng,
        )
        result = ep.run()
        return result.posterior.mean(), result.posterior.variance(), result.iterations, result.converged

    def _solve_reference_mcmc(
        self, prepared: _PreparedSlice
    ) -> Tuple[Dict[str, float], Dict[str, float]]:
        """Reference twin of the batched MCMC estimator (object-based).

        Walks the slice's Python factor objects per step, seeded with the
        same per-record seed the batched path would use — the differential
        harness pins the two within floating-point noise.
        """
        observation_factors, constraint_groups = self._build_factors(prepared.summaries)
        factors: List[Factor] = list(observation_factors)
        for group in constraint_groups:
            factors.extend(group)
        # The registry names the twin class, so swapping a registered
        # implementation swaps every entry point at once.
        twin = self._estimator.reference(
            factors,
            self._prior_density(prepared),
            n_samples=self.mcmc_samples,
            burn_in=self.mcmc_burn_in,
            adapt=self.mcmc_adapt,
        )
        moments = twin.run(rng=np.random.default_rng(prepared.mcmc_seed))
        return moments.mean(), moments.variance()

    def _solve_reference_site_mcmc(
        self, prepared: _PreparedSlice
    ) -> Tuple[Dict[str, float], Dict[str, float], int, bool]:
        """Reference twin of the batched per-site tilted MCMC (object-based).

        Runs the identical EP loop with per-site coupled-chain moment
        estimation, walking Python factor objects per step, seeded with the
        same per-record seed the batched path would use — the differential
        harness pins the two within floating-point noise.
        """
        observation_factors, constraint_groups = self._build_factors(prepared.summaries)
        site_lists = self._site_factor_lists(observation_factors, constraint_groups)
        twin = self._estimator.reference(
            site_lists,
            self._prior_density(prepared),
            n_samples=self.mcmc_samples,
            burn_in=self.mcmc_burn_in,
            adapt=self.mcmc_adapt,
            damping=self.ep_damping,
            max_iterations=self.ep_max_iterations,
            recorder=self.chain_recorder,
        )
        moments = twin.run(
            rng=np.random.default_rng(prepared.mcmc_seed), tick=prepared.record.tick
        )
        return moments.mean(), moments.variance(), moments.iterations, moments.converged

    def _prepare_slice(self, record: SamplingRecord) -> _PreparedSlice:
        """Advance the temporal state and build one slice's arrays."""
        summaries = self._observation_summaries(record)
        intensity_ratio = self._intensity_ratio(summaries)
        self._ensure_scales(summaries)
        scale_obs = np.array([self._scale[event] for event in summaries.events])
        obs_mean = summaries.loc / scale_obs
        obs_scale = np.maximum(summaries.scale / scale_obs, 1e-9)
        if self.observation_model == "student_t":
            obs_variance = student_t_moment_variance(obs_scale, summaries.df)
        else:
            obs_variance = obs_scale**2
        scales_vec = np.array([self._scale[event] for event in self.events])
        prior_mean_vec, prior_var_vec = self._build_prior_arrays(intensity_ratio)
        mcmc_seed = 0
        if self.moment_estimator in ("batched-mcmc", "mcmc"):
            # Drawn per record under that record's restored state, so a
            # batch member samples the same chain its looped twin would.
            mcmc_seed = int(self._rng.integers(0, 2**63))
        return _PreparedSlice(
            record=record,
            measured=summaries.events,
            summaries=summaries,
            obs_mean=obs_mean,
            obs_scale=obs_scale,
            obs_variance=obs_variance,
            scales_vec=scales_vec,
            prior_mean_vec=prior_mean_vec,
            prior_var_vec=prior_var_vec,
            scale=dict(self._scale),
            tick=self._tick,
            rng_state=self._rng.bit_generator.state,
            mcmc_seed=mcmc_seed,
        )

    def _solve_group_arrays(
        self,
        group: List[_PreparedSlice],
        kernel: CompiledEPKernel,
        binder: CompiledBinder,
    ) -> List[Tuple[Mapping[str, float], Mapping[str, float], int, bool]]:
        """Solve one same-signature group through the array-native path.

        Every step — binding, priors, the EP kernel or the batched MCMC
        estimator — is element-wise or gufunc-batched, so a group of one is
        bit-identical to the same slice inside a larger group.
        """
        observer = self._observer
        with (
            observer.span("kernel.bind", batch=len(group))
            if observer is not None
            else nullcontext()
        ):
            obs_mean = np.stack([p.obs_mean for p in group])
            obs_variance = np.stack([p.obs_variance for p in group])
            scales = np.stack([p.scales_vec for p in group])
            stacked = binder.bind_batch(obs_mean, obs_variance, scales)

            prior_mean = np.stack([p.prior_mean_vec for p in group])
            prior_var = np.stack([p.prior_var_vec for p in group])
            batch, n = prior_mean.shape
            prior_precision = np.zeros((batch, n, n))
            diagonal = np.arange(n)
            prior_precision[:, diagonal, diagonal] = 1.0 / prior_var
            prior_shift = prior_mean / prior_var

        with (
            observer.span(
                "kernel.solve", batch=len(group), estimator=self.moment_estimator
            )
            if observer is not None
            else nullcontext()
        ):
            return self._dispatch_group_solve(
                group, kernel, binder, stacked, prior_precision, prior_shift,
                obs_mean, obs_variance,
            )

    def _dispatch_group_solve(
        self,
        group: List[_PreparedSlice],
        kernel: CompiledEPKernel,
        binder: CompiledBinder,
        stacked,
        prior_precision: np.ndarray,
        prior_shift: np.ndarray,
        obs_mean: np.ndarray,
        obs_variance: np.ndarray,
    ) -> List[Tuple[Mapping[str, float], Mapping[str, float], int, bool]]:
        """Route one bound group to its estimator's batched solve."""
        batch = prior_shift.shape[0]
        if self.moment_estimator == "analytic":
            result = self._run_kernel(kernel, stacked, prior_precision, prior_shift)
            return [
                (
                    result.mean_dict(b),
                    result.variance_dict(b),
                    int(result.iterations[b]),
                    bool(result.converged[b]),
                )
                for b in range(batch)
            ]

        measured = group[0].measured
        if self.moment_estimator == "mcmc":
            # Per-site tilted MCMC inside the EP loop: the accelerator's
            # inner loop, batched over the group.  The observation site's
            # non-Gaussian correction lives in *site-local* coordinates
            # (the binder's slot table).
            site_tails = {}
            if self.observation_model == "student_t" and measured:
                site_tails[binder.observation.site] = StudentTTail(
                    slots=binder.observation.slots,
                    loc=obs_mean,
                    scale=np.stack([p.obs_scale for p in group]),
                    df=np.stack([p.summaries.df for p in group]),
                    variance=obs_variance,
                )
            sampler = self._estimator.batched(
                kernel,
                n_samples=self.mcmc_samples,
                burn_in=self.mcmc_burn_in,
                adapt=self.mcmc_adapt,
                recorder=self.chain_recorder,
            )
            solved = sampler.run(
                stacked,
                prior_precision,
                prior_shift,
                seeds=[p.mcmc_seed for p in group],
                site_tails=site_tails,
                ticks=[p.record.tick for p in group],
            )
            return [
                (
                    solved.mean_dict(b),
                    solved.variance_dict(b),
                    int(solved.iterations[b]),
                    bool(solved.converged[b]),
                )
                for b in range(batch)
            ]

        # Batched MCMC: the coupled-chain estimator over the same buffers.
        extra = None
        if self.observation_model == "student_t" and measured:
            extra = StudentTTail(
                slots=np.array([self._event_slot[e] for e in measured], dtype=np.intp),
                loc=obs_mean,
                scale=np.stack([p.obs_scale for p in group]),
                df=np.stack([p.summaries.df for p in group]),
                variance=obs_variance,
            )
        sampler = self._estimator.batched(
            kernel,
            n_samples=self.mcmc_samples,
            burn_in=self.mcmc_burn_in,
            adapt=self.mcmc_adapt,
        )
        sampled = sampler.run(
            stacked,
            prior_precision,
            prior_shift,
            seeds=[p.mcmc_seed for p in group],
            extra_log_density=extra,
        )
        return [
            (sampled.mean_dict(b), sampled.variance_dict(b), 0, True)
            for b in range(batch)
        ]

    def _finalize(
        self,
        prepared: _PreparedSlice,
        means: Mapping[str, float],
        variances: Mapping[str, float],
        iterations: int,
        converged: bool,
    ) -> Tuple[PosteriorReport, EngineState]:
        """Turn one slice's posterior into a report + successor state."""
        report = PosteriorReport(
            tick=prepared.record.tick,
            measured_events=prepared.measured,
            ep_iterations=iterations,
            ep_converged=converged,
        )
        prior_mean: Dict[str, Optional[float]] = {}
        for event in self.events:
            scale = prepared.scale[event]
            mean = max(means[event] * scale, 0.0)
            std = math.sqrt(max(variances[event], 0.0)) * scale
            if event in self.monitored_events:
                report.estimates[event] = EventEstimate(event=event, mean=mean, std=std)
            # The temporal state for the next slice (latent events too).
            prior_mean[event] = max(mean, 1e-9)
        state = EngineState(
            prior_mean=prior_mean,
            scale=prepared.scale,
            tick=prepared.tick + 1,
            rng_state=prepared.rng_state,
        )
        return report, state

    def _finalize_prior_only(
        self, prepared: _PreparedSlice
    ) -> Tuple[PosteriorReport, EngineState]:
        """Slice with no sites at all: the posterior is the prior."""
        prior = self._prior_density(prepared)
        return self._finalize(prepared, prior.mean(), prior.variance(), 0, True)

    def process_record(self, record: SamplingRecord) -> PosteriorReport:
        """Infer the posterior for one scheduler time slice."""
        prepared = self._prepare_slice(record)
        if prepared.measured or self._has_sites:
            compiled = self._compiled_kernel(prepared)
            if compiled is not None:
                kernel, binder = compiled
                means, variances, iterations, converged = self._solve_group_arrays(
                    [prepared], kernel, binder
                )[0]
            elif self.moment_estimator == "batched-mcmc":
                means, variances = self._solve_reference_mcmc(prepared)
                iterations, converged = 0, True
            elif self.moment_estimator == "mcmc":
                means, variances, iterations, converged = (
                    self._solve_reference_site_mcmc(prepared)
                )
            else:
                observation_factors, constraint_groups = self._build_factors(
                    prepared.summaries
                )
                site_lists = self._site_factor_lists(observation_factors, constraint_groups)
                means, variances, iterations, converged = self._solve_reference(
                    site_lists, self._prior_density(prepared)
                )
            report, state = self._finalize(prepared, means, variances, iterations, converged)
        else:
            report, state = self._finalize_prior_only(prepared)

        # process_record mutates the engine in place; restore() of the
        # successor state is bit-identical to this (the worker pool relies
        # on the equivalence of both paths).
        self._prior_mean.update(state.prior_mean)
        self._tick = state.tick
        return report

    def process_batch(
        self, items: Sequence[Tuple[Optional[EngineState], SamplingRecord]]
    ) -> List[Tuple[PosteriorReport, EngineState]]:
        """Solve many independent slices in vectorized batches.

        Each item pairs a monitoring run's temporal state (``None`` for a
        fresh run) with its next record.  Slices are prepared sequentially
        (the cheap, state-dependent part), grouped by graph-structure
        signature, and every group is solved in one array-native pass —
        :meth:`CompiledEPKernel.run_stacked` for the analytic estimator,
        :meth:`~repro.fg.mcmc.BatchedMCMC.run` for ``"batched-mcmc"``.
        Returns, in input order, each slice's report and successor state —
        exactly what ``restore(); process_record(); snapshot()`` would
        produce, slice for slice, bit for bit.
        """
        items = list(items)
        if not items:
            return []
        if not self._compiled_path():
            # Reference path (e.g. the per-site MCMC estimator, or the
            # reference twins): per-slice solves.
            results: List[Tuple[PosteriorReport, EngineState]] = []
            for state, record in items:
                self.restore(state) if state is not None else self.reset()
                report = self.process_record(record)
                results.append((report, self.snapshot()))
            return results

        prepared: List[_PreparedSlice] = []
        for state, record in items:
            self.restore(state) if state is not None else self.reset()
            slice_ = self._prepare_slice(record)
            slice_.state = state
            prepared.append(slice_)

        outputs: List[Optional[Tuple[PosteriorReport, EngineState]]] = [None] * len(items)
        groups: Dict[Tuple[str, ...], List[int]] = {}
        for index, slice_ in enumerate(prepared):
            groups.setdefault(slice_.measured, []).append(index)

        # Cross-signature mega-batching: merge every eligible signature
        # group into one canonical full-width solve (bit-identical to the
        # per-signature solves below — padded lanes are exact no-ops).
        mega_signatures = self._megabatch_eligible(groups, prepared)
        if mega_signatures:
            observer = self._observer
            if observer is not None:
                observer.count("kernel.megabatch.rounds")
                observer.count("kernel.megabatch.signatures", len(mega_signatures))
            merged = [
                (signature, [prepared[index] for index in groups[signature]])
                for signature in mega_signatures
            ]
            solved = self._solve_megabatch(merged)
            position = 0
            for signature in mega_signatures:
                for index in groups[signature]:
                    means, variances, iterations, converged = solved[position]
                    outputs[index] = self._finalize(
                        prepared[index], means, variances, iterations, converged
                    )
                    position += 1
            merged_set = set(mega_signatures)
            remaining = {
                signature: indices
                for signature, indices in groups.items()
                if signature not in merged_set
            }
        else:
            remaining = groups

        # Per-signature groups: compile/lookup sequentially (the caches are
        # engine state), then solve — concurrently across groups under
        # ``KernelExecSpec(partition="signature")``, in which case results
        # are still recorded in the deterministic group order after the join.
        jobs: List[Tuple[List[int], CompiledEPKernel, CompiledBinder]] = []
        for signature, indices in remaining.items():
            first = prepared[indices[0]]
            if not (first.measured or self._has_sites):
                for index in indices:
                    outputs[index] = self._finalize_prior_only(prepared[index])
                continue
            compiled = self._compiled_kernel(first)
            if compiled is None:
                # Non-compilable structure: reference path per slice.
                for index in indices:
                    slice_ = prepared[index]
                    self.restore(slice_.state) if slice_.state is not None else self.reset()
                    outputs[index] = (self.process_record(slice_.record), self.snapshot())
                continue
            kernel, binder = compiled
            jobs.append((indices, kernel, binder))

        spec = self.kernel_exec
        parallel_groups = (
            spec is not None
            and spec.threads > 1
            and spec.partition == "signature"
            and len(jobs) > 1
            and self._estimator.megabatch
            and self._observer is None
            and self.chain_recorder is None
        )
        if parallel_groups:
            pool = self._kernel_threads()
            futures = [
                pool.submit(
                    self._solve_group_arrays,
                    [prepared[index] for index in indices],
                    kernel,
                    binder,
                )
                for indices, kernel, binder in jobs
            ]
            solved_jobs = [future.result() for future in futures]
        else:
            solved_jobs = [
                self._solve_group_arrays(
                    [prepared[index] for index in indices], kernel, binder
                )
                for indices, kernel, binder in jobs
            ]
        for (indices, _, _), solved in zip(jobs, solved_jobs):
            for position, index in enumerate(indices):
                means, variances, iterations, converged = solved[position]
                outputs[index] = self._finalize(
                    prepared[index], means, variances, iterations, converged
                )
        if any(output is None for output in outputs):
            raise RuntimeError("process_batch left a slice unsolved (internal error)")
        return outputs  # type: ignore[return-value]

    def correct(self, sampled: SampledTrace) -> EstimateTrace:
        """Correct a full sampled trace, returning per-tick estimates."""
        self.reset()
        estimates = EstimateTrace(method=self.name)
        for record in sampled.records:
            report = self.process_record(record)
            estimates.append(report.means(), report.stds())
        return estimates

    def reports(self, sampled: SampledTrace) -> List[PosteriorReport]:
        """Full posterior reports (including uncertainty) for a sampled trace."""
        self.reset()
        return [self.process_record(record) for record in sampled.records]
