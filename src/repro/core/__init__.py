"""BayesPerf core: the correction engine and the perf-like user API.

* :class:`BayesPerfEngine` — turns multiplexed samples into per-tick posterior
  estimates using the invariant factor graph and Expectation Propagation.
* :class:`PerfSession` — one-call orchestration of workload, PMU sampling,
  scheduling and correction (what the examples and experiments use).
* :class:`BayesPerfShim` — a ``perf_event_open``-style streaming API backed by
  ring buffers, mirroring the userspace shim of §5.
"""

from repro.core.posterior import EventEstimate, PosteriorReport
from repro.core.engine import BayesPerfEngine
from repro.core.ringbuffer import RingBuffer
from repro.core.session import PerfSession, SessionResult
from repro.core.shim import BayesPerfShim, PerfEventHandle

__all__ = [
    "EventEstimate",
    "PosteriorReport",
    "BayesPerfEngine",
    "RingBuffer",
    "PerfSession",
    "SessionResult",
    "BayesPerfShim",
    "PerfEventHandle",
]
