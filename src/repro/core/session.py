"""High-level monitoring sessions.

A :class:`PerfSession` wires together everything a user of the library needs
to evaluate one correction method on one workload: the event catalog, the
schedule (overlap-aware for BayesPerf, round-robin otherwise), the machine
model, the multiplexed sampler, the polled reference, the correction method
and the error metric.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.baselines.counterminer import CounterMiner
from repro.baselines.linux_scaling import LinuxScaling
from repro.baselines.weaver import WeaverPin
from repro.core.engine import BayesPerfEngine
from repro.fg.mcmc import ChainTrace
from repro.events.catalog import EventCatalog
from repro.events.profiles import standard_profiling_events
from repro.events.registry import catalog_for
from repro.metrics.error import ErrorReport, trace_error
from repro.pmu.noise import NoiseModel
from repro.pmu.sampling import MultiplexedSampler, PolledTrace, PollingReader, SampledTrace
from repro.pmu.traces import EstimateTrace
from repro.scheduling.cache import cached_schedule
from repro.scheduling.schedule import Schedule
from repro.uarch.machine import Machine, MachineConfig, MachineTrace
from repro.uarch.profile import WorkloadSpec
from repro.workloads.registry import get_workload

#: Methods that use the overlap-aware schedule.
_BAYESPERF_METHODS = ("bayesperf",)
#: All built-in correction method names.
KNOWN_METHODS = ("bayesperf", "linux", "counterminer", "wm+pin")


@dataclass
class SessionResult:
    """Everything produced by one monitoring session run."""

    workload: str
    arch: str
    method: str
    schedule: Schedule
    machine_trace: MachineTrace
    polled: PolledTrace
    sampled: SampledTrace
    estimates: EstimateTrace
    error: ErrorReport
    derived_error: Optional[ErrorReport] = None

    @property
    def mean_error_percent(self) -> float:
        """Aggregate relative error (percent) across evaluated events."""
        return self.error.mean_error_percent


class PerfSession:
    """One configured monitoring pipeline, reusable across workloads.

    Parameters
    ----------
    arch:
        Microarchitecture name understood by :func:`repro.events.catalog_for`.
    method:
        Correction method: ``"bayesperf"``, ``"linux"``, ``"counterminer"`` or
        ``"wm+pin"``.
    metrics:
        Derived metrics to monitor; their input events are collected.  The
        default is the catalog's first ten derived metrics (as in §6.2).
    events:
        Explicit event list overriding ``metrics``.
    machine_config, noise:
        Machine and noise models.
    samples_per_tick:
        PMI sub-samples per measured event per quantum.
    reference:
        ``"same-run"`` polls the reference on the same simulated run
        (isolating multiplexing error); ``"separate-run"`` polls a second run
        with a different seed, as on real hardware.
    read_interval_ticks:
        Number of multiplexing quanta between two userspace reads; errors are
        evaluated at this granularity and the Linux baseline scales its
        counts over the same interval.
    estimator:
        Optional :class:`~repro.api.EstimatorSpec` selecting a registered
        moment estimator and its sampling effort — the preferred way to
        configure BayesPerf tilted-moment computation (estimator names
        resolve through the :mod:`repro.fg.registry`; explicit
        ``engine_kwargs`` entries win).
    moment_estimator:
        Deprecated string shorthand for ``estimator=EstimatorSpec(name)``
        (emits ``DeprecationWarning``; behaviour is unchanged).
    use_compiled_kernel:
        Route the BayesPerf engine's solves through the vectorized array
        path (default).  Set to ``False`` to run each estimator's reference
        twin instead — the object-walking EP loop for ``"analytic"``,
        :class:`~repro.fg.mcmc.ReferenceMCMC` for ``"batched-mcmc"``,
        :class:`~repro.fg.ep.ReferenceSiteMCMC` for ``"mcmc"`` — the
        A/B ablation the differential tests and benchmarks use.  An
        explicit value here overrides the ``estimator`` spec's flag (and an
        explicit ``engine_kwargs`` entry overrides both).
    recorder:
        Optional :class:`~repro.fg.mcmc.ChainTrace` (or
        :class:`~repro.api.RecorderSpec`) the engine appends one record per
        (slice, EP iteration, site) chain to when the ``"mcmc"`` estimator
        runs — the capture side of the accelerator co-simulation (see
        ``examples/accelerator_cosim.py``).
    chain_recorder:
        Deprecated alias for ``recorder`` (emits ``DeprecationWarning``).
    engine_kwargs:
        Extra keyword arguments forwarded to :class:`BayesPerfEngine`
        (an explicit ``use_compiled_kernel`` entry here wins over the
        session-level flag).
    """

    def __init__(
        self,
        arch: str = "x86",
        *,
        method: str = "bayesperf",
        metrics: Optional[Sequence[str]] = None,
        events: Optional[Sequence[str]] = None,
        machine_config: Optional[MachineConfig] = None,
        noise: Optional[NoiseModel] = None,
        samples_per_tick: int = 4,
        reference: str = "same-run",
        read_interval_ticks: int = 8,
        estimator=None,
        moment_estimator: Optional[str] = None,
        use_compiled_kernel: Optional[bool] = None,
        recorder=None,
        chain_recorder: Optional[ChainTrace] = None,
        engine_kwargs: Optional[Dict] = None,
    ) -> None:
        if method not in KNOWN_METHODS:
            raise ValueError(f"unknown method {method!r}; expected one of {KNOWN_METHODS}")
        if reference not in ("same-run", "separate-run"):
            raise ValueError("reference must be 'same-run' or 'separate-run'")
        if read_interval_ticks <= 0:
            raise ValueError("read_interval_ticks must be positive")
        self.read_interval_ticks = read_interval_ticks
        self.arch = arch
        self.catalog: EventCatalog = catalog_for(arch)
        self.method = method
        self.reference = reference
        self.noise = noise if noise is not None else NoiseModel()
        self.samples_per_tick = samples_per_tick
        self.machine_config = machine_config if machine_config is not None else MachineConfig(
            name=self.catalog.name
        )
        self.engine_kwargs = dict(engine_kwargs) if engine_kwargs else {}
        # Precedence for the compiled/reference switch: an explicit
        # engine_kwargs entry, then an explicit session-level flag, then the
        # estimator spec, then the compiled default.
        if use_compiled_kernel is not None:
            self.engine_kwargs.setdefault("use_compiled_kernel", use_compiled_kernel)
        if estimator is not None:
            # An EstimatorSpec (anything exposing engine_kwargs()): resolved
            # through the fg registry; explicit engine_kwargs entries win.
            for key, value in estimator.engine_kwargs().items():
                self.engine_kwargs.setdefault(key, value)
        self.engine_kwargs.setdefault("use_compiled_kernel", True)
        if moment_estimator is not None:
            warnings.warn(
                "PerfSession(moment_estimator=...) is deprecated; pass "
                "estimator=EstimatorSpec(name) from repro.api",
                DeprecationWarning,
                stacklevel=2,
            )
            self.engine_kwargs.setdefault("moment_estimator", moment_estimator)
        if chain_recorder is not None:
            warnings.warn(
                "PerfSession(chain_recorder=...) is deprecated; pass "
                "recorder=<ChainTrace> (or a RecorderSpec from repro.api)",
                DeprecationWarning,
                stacklevel=2,
            )
            if recorder is None:
                recorder = chain_recorder
        if recorder is not None:
            if isinstance(recorder, ChainTrace):
                trace = recorder
            else:  # a RecorderSpec
                if recorder.sink is not None:
                    raise ValueError(
                        "PerfSession does not stream chain records; a "
                        "RecorderSpec with a sink needs the streaming "
                        "pipeline (repro.api.Pipeline.stream)"
                    )
                trace = recorder.build()
            self.engine_kwargs.setdefault("chain_recorder", trace)

        if events is not None:
            self.events: Tuple[str, ...] = tuple(events)
        elif metrics is not None:
            self.events = self.catalog.events_for_derived(tuple(metrics))
        else:
            # Default: the standard profiling set (the counters behind the
            # first ten derived metrics plus their relation-completing events).
            self.events = standard_profiling_events(self.catalog)

        self.schedule = self._build_schedule()

    # -- construction -------------------------------------------------------

    def _build_schedule(self) -> Schedule:
        kind = "overlap" if self.method in _BAYESPERF_METHODS else "round-robin"
        return cached_schedule(self.catalog, self.events, kind=kind)

    def _build_method(self):
        if self.method == "bayesperf":
            return BayesPerfEngine(self.catalog, self.events, **self.engine_kwargs)
        if self.method == "linux":
            return LinuxScaling(read_interval_ticks=self.read_interval_ticks)
        if self.method == "counterminer":
            return CounterMiner()
        if self.method == "wm+pin":
            return WeaverPin(self.catalog)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- execution ------------------------------------------------------------

    def run(
        self,
        workload: Union[str, WorkloadSpec],
        *,
        n_ticks: Optional[int] = None,
        seed: int = 0,
    ) -> SessionResult:
        """Run the full pipeline on one workload and return all artefacts."""
        spec = get_workload(workload) if isinstance(workload, str) else workload
        if not isinstance(spec, WorkloadSpec):
            raise TypeError(
                f"workload {getattr(spec, 'name', spec)!r} is not a simulatable "
                "WorkloadSpec (recorded traces replay through repro.fleet, not "
                "through PerfSession)"
            )
        ticks = n_ticks if n_ticks is not None else spec.total_ticks

        machine = Machine(self.machine_config, spec, seed=seed)
        machine_trace = machine.run(ticks)

        sampler = MultiplexedSampler(
            self.catalog,
            self.schedule,
            noise=self.noise,
            samples_per_tick=self.samples_per_tick,
            seed=seed + 1,
        )
        sampled = sampler.sample(machine_trace)

        if self.reference == "same-run":
            reference_trace = machine_trace
        else:
            reference_machine = Machine(self.machine_config, spec, seed=seed + 9973)
            reference_trace = reference_machine.run(ticks)
        polled_events = tuple(sampled.events)
        reader = PollingReader(self.catalog, polled_events, noise=self.noise, seed=seed + 2)
        polled = reader.read(reference_trace)

        corrector = self._build_method()
        estimates = corrector.correct(sampled)

        # Every method needs one schedule rotation to see each event at least
        # once; those warm-up ticks are excluded from the comparison.  Errors
        # are evaluated at read-interval granularity (what a monitoring tool
        # actually consumes), per the session's read_interval_ticks.
        warmup = min(self.schedule.rotation_ticks, max(len(estimates) - 1, 0))
        error = trace_error(
            estimates,
            polled,
            events=self.events,
            skip_ticks=warmup,
            aggregate_ticks=self.read_interval_ticks,
        )
        derived_error = self._derived_error(estimates, polled, skip_ticks=warmup)

        return SessionResult(
            workload=spec.name,
            arch=self.arch,
            method=self.method,
            schedule=self.schedule,
            machine_trace=machine_trace,
            polled=polled,
            sampled=sampled,
            estimates=estimates,
            error=error,
            derived_error=derived_error,
        )

    def _derived_error(
        self, estimates: EstimateTrace, polled: PolledTrace, *, skip_ticks: int = 0
    ) -> Optional[ErrorReport]:
        """Error on the derived metrics computable from the monitored events."""
        metric_names = [
            metric.name
            for metric in self.catalog.derived
            if all(event in self.events or event in polled.events for event in metric.inputs)
        ]
        if not metric_names:
            return None
        estimated = EstimateTrace(method=f"{estimates.method}-derived")
        reference = PolledTrace(catalog_name=polled.catalog_name, events=tuple(metric_names))
        n_ticks = min(len(estimates), len(polled))
        for tick in range(n_ticks):
            estimate_values = estimates.at(tick)
            polled_values = polled.at(tick)
            estimated.append(
                {
                    name: self.catalog.derived.get(name).compute(estimate_values)
                    for name in metric_names
                    if all(event in estimate_values for event in self.catalog.derived.get(name).inputs)
                }
            )
            reference.values.append(
                {
                    name: self.catalog.derived.get(name).compute(polled_values)
                    for name in metric_names
                    if all(event in polled_values for event in self.catalog.derived.get(name).inputs)
                }
            )
        # Ratio metrics blow up when a naive method estimates a denominator
        # near zero; cap the per-point error so the summary stays readable.
        report = trace_error(
            estimated, reference, events=metric_names, skip_ticks=skip_ticks, cap=10.0
        )
        return report
