"""Posterior result types returned to BayesPerf users."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from scipy import stats


@dataclass(frozen=True)
class EventEstimate:
    """Posterior summary of one event in one time slice."""

    event: str
    mean: float
    std: float

    def __post_init__(self) -> None:
        if self.std < 0:
            raise ValueError("std must be non-negative")

    @property
    def variance(self) -> float:
        return self.std**2

    @property
    def relative_uncertainty(self) -> float:
        """Posterior coefficient of variation (std / |mean|)."""
        return self.std / max(abs(self.mean), 1e-12)

    def interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Symmetric credible interval at the given confidence."""
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must lie in (0, 1)")
        half = stats.norm.ppf(0.5 + confidence / 2.0) * self.std
        return (self.mean - half, self.mean + half)

    def contains(self, value: float, confidence: float = 0.95) -> bool:
        """Whether *value* lies inside the credible interval."""
        low, high = self.interval(confidence)
        return low <= value <= high


@dataclass
class PosteriorReport:
    """Posterior summaries for every monitored event in one time slice."""

    tick: int
    estimates: Dict[str, EventEstimate] = field(default_factory=dict)
    measured_events: Tuple[str, ...] = ()
    ep_iterations: int = 0
    ep_converged: bool = True

    def __contains__(self, event: str) -> bool:
        return event in self.estimates

    def __getitem__(self, event: str) -> EventEstimate:
        return self.estimates[event]

    def means(self) -> Dict[str, float]:
        return {name: estimate.mean for name, estimate in self.estimates.items()}

    def stds(self) -> Dict[str, float]:
        return {name: estimate.std for name, estimate in self.estimates.items()}

    def most_uncertain(self, count: int = 5) -> Tuple[EventEstimate, ...]:
        """Events with the highest relative posterior uncertainty."""
        ranked = sorted(
            self.estimates.values(), key=lambda e: e.relative_uncertainty, reverse=True
        )
        return tuple(ranked[:count])
