"""Fixed-capacity ring buffer.

Models the kernel/userspace ring buffers of the BayesPerf system architecture
(§5): producers enqueue new samples, consumers drain them, and new entries are
dropped when the buffer is full — the same backpressure behaviour as the perf
mmap buffer.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterable, List, Optional, TypeVar

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """A bounded FIFO that drops new entries when full."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[T] = deque()
        self.dropped = 0
        self.total_pushed = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def push(self, item: T) -> bool:
        """Enqueue *item*; returns False (and counts a drop) when full."""
        self.total_pushed += 1
        if self.is_full:
            self.dropped += 1
            return False
        self._entries.append(item)
        return True

    def push_many(self, items: Iterable[T]) -> int:
        """Enqueue many items; returns how many were accepted."""
        accepted = 0
        for item in items:
            if self.push(item):
                accepted += 1
        return accepted

    def pop(self) -> Optional[T]:
        """Dequeue the oldest item, or None when empty."""
        if self._entries:
            return self._entries.popleft()
        return None

    def drain(self) -> List[T]:
        """Dequeue everything currently buffered."""
        items = list(self._entries)
        self._entries.clear()
        return items

    def peek(self) -> Optional[T]:
        """The oldest item without removing it."""
        return self._entries[0] if self._entries else None

    def snapshot(self) -> List[T]:
        """Every buffered item, oldest first, without consuming any.

        The durability layer serialises this (plus the counters) into WAL
        checkpoints so a resumed run re-materialises the exact buffer.
        """
        return list(self._entries)
